"""Acceptance tests of the HTTP serving layer (`repro.server`).

Pins the issue's acceptance criteria end-to-end against real sockets:

* a fully-cached ``/recommend`` answers without any fresh evaluation — the
  store row count is unchanged and ``/metrics`` reports the cache hit;
* ``/metrics`` emits well-formed Prometheus exposition text;
* N concurrent clients hitting ``/pareto`` and ``/recommend`` during a live
  job each see a consistent snapshot (non-dominated front, parseable JSON,
  no 500s);
* graceful shutdown during an active job drains the executor: the job ends
  in a terminal state and every completed evaluation's row is on disk —
  the merged store equals the set of completed evaluations;
* ``repro serve`` exits cleanly on SIGTERM.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.cache import PersistentEvaluationStore
from repro.core.pareto import non_dominated_mask
from repro.server import ReproServer, ServerConfig
from repro.server.catalog import StoreCatalog

SEED_ROWS = [
    ("0,0,0,0", {"val_accuracy": 0.55, "energy_nj": 20.0, "latency_ms": 2.0}),
    ("0,2,1,0", {"val_accuracy": 0.75, "energy_nj": 42.0, "latency_ms": 3.1}),
    ("1,2,1,2", {"val_accuracy": 0.80, "energy_nj": 90.0, "latency_ms": 5.5}),
]


def seed_cache(cache_dir) -> None:
    store = PersistentEvaluationStore(os.path.join(str(cache_dir), "seed-demo.jsonl"))
    for key, metrics in SEED_ROWS:
        store.put(
            key,
            {
                "encoding": [int(v) for v in key.split(",")],
                "objective_value": 1.0 - metrics["val_accuracy"],
                "metrics": metrics,
            },
        )


def get_json(url: str):
    """(status, payload) of a GET; error bodies are JSON too."""
    try:
        with urllib.request.urlopen(url) as reply:
            return reply.status, json.load(reply)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def post_json(url: str, payload: dict):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), method="POST"
    )
    try:
        with urllib.request.urlopen(request) as reply:
            return reply.status, json.load(reply)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def wait_terminal(url: str, job_id: str, timeout: float = 120.0) -> dict:
    deadline = time.time() + timeout
    while time.time() < deadline:
        _, job = get_json(f"{url}/jobs/{job_id}")
        if job["state"] in ("completed", "failed", "stopped"):
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} not terminal within {timeout}s")


SMOKE_JOB = {
    "objectives": ["accuracy", "energy"],
    "scale": "smoke",
    "model": "single_block",
    "iterations": 3,
    "seed": 0,
}


@pytest.fixture()
def server(tmp_path):
    seed_cache(tmp_path)
    with ReproServer(ServerConfig(cache_dir=str(tmp_path), port=0)) as srv:
        yield srv


class TestReadEndpoints:
    def test_healthz_reports_store_and_jobs(self, server):
        status, health = get_json(server.url + "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["store"] == {"stores": 1, "rows": 3}
        assert health["jobs"]["running"] == 0

    def test_unknown_path_and_wrong_method(self, server):
        status, body = get_json(server.url + "/nope")
        assert status == 404 and "error" in body
        status, body = post_json(server.url + "/healthz", {})
        assert status == 405 and "allowed" in body["error"]

    def test_metrics_prometheus_well_formed(self, server):
        get_json(server.url + "/healthz")  # at least one observed request
        with urllib.request.urlopen(server.url + "/metrics") as reply:
            assert reply.headers["Content-Type"].startswith("text/plain; version=0.0.4")
            page = reply.read().decode("utf-8")
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (?:[0-9.e+-]+|\+Inf|NaN)$"
        )
        names = set()
        for line in page.strip().splitlines():
            if line.startswith("# HELP") or line.startswith("# TYPE"):
                names.add(line.split()[2])
                continue
            assert sample.match(line), f"malformed sample line: {line!r}"
        assert {
            "repro_http_requests_total",
            "repro_http_request_seconds",
            "repro_store_rows",
            "repro_jobs_running",
            "repro_evals_in_flight",
            "repro_recommend_cache_hits_total",
        } <= names
        assert "repro_store_rows 3" in page
        assert 'endpoint="/healthz"' in page

    def test_pareto_front_is_non_dominated(self, server):
        status, front = get_json(server.url + "/pareto?objectives=accuracy,energy")
        assert status == 200
        assert front["rows_considered"] == 3
        assert front["stores"] == ["seed-demo"]
        values = np.array(
            [[-p["objectives"]["accuracy"], p["objectives"]["energy"]] for p in front["front"]]
        )
        assert non_dominated_mask(values).all()
        # the dominated seed row (0.75 acc at 42 nJ beats nothing) is present:
        # all three rows are mutually non-dominated on (accuracy, energy)
        assert len(front["front"]) == 3

    def test_pareto_unknown_objective_is_400(self, server):
        status, body = get_json(server.url + "/pareto?objectives=accuracy,bogus")
        assert status == 400 and "bogus" in body["error"]

    def test_recommend_answers_fully_from_cache(self, server):
        """Acceptance: no fresh evaluation — row count unchanged, hit counted."""
        rows_before = server.catalog.total_rows()
        status, reply = get_json(server.url + "/recommend?energy_budget=50")
        assert status == 200 and reply["found"]
        # under energy<=50 the 0.75-accuracy row wins (0.80 costs 90 nJ)
        assert reply["recommendation"]["key"] == "0,2,1,0"
        assert reply["recommendation"]["store"] == "seed-demo"
        assert reply["candidates"] == 2
        assert server.catalog.total_rows() == rows_before == 3
        page = server.registry.render()
        assert "repro_recommend_cache_hits_total 1" in page
        assert server.jobs.counts()["running"] == 0  # nothing was evaluated

    def test_recommend_multiple_budgets(self, server):
        status, reply = get_json(
            server.url + "/recommend?energy_budget=100&latency_budget=4"
        )
        assert status == 200
        assert reply["recommendation"]["key"] == "0,2,1,0"
        assert reply["constraints"] == {"energy_budget": 100.0, "latency_budget": 4.0}

    def test_recommend_miss_is_404_with_reason(self, server):
        status, reply = get_json(server.url + "/recommend?energy_budget=1")
        assert status == 404 and not reply["found"]
        assert reply["rows_considered"] == 3
        assert "no cached evaluation" in reply["reason"]
        assert "repro_recommend_cache_misses_total 1" in server.registry.render()

    def test_recommend_empty_store_names_the_cause(self, tmp_path):
        with ReproServer(ServerConfig(cache_dir=str(tmp_path / "empty"), port=0)) as srv:
            status, reply = get_json(srv.url + "/recommend?energy_budget=1")
        assert status == 404 and reply["reason"] == "evaluation store is empty"

    def test_recommend_bad_parameter_is_400(self, server):
        status, body = get_json(server.url + "/recommend?energy_budget=cheap")
        assert status == 400 and "energy_budget" in body["error"]


class TestJobs:
    def test_validation_errors(self, server):
        status, body = post_json(server.url + "/jobs", {"dataset": "imagenet"})
        assert status == 400 and "imagenet" in body["error"]
        status, body = post_json(server.url + "/jobs", {"objectives": ["energy"]})
        assert status == 400 and "accuracy" in body["error"]
        status, body = get_json(server.url + "/jobs/job-deadbeef")
        assert status == 404

    def test_pareto_job_lifecycle_events_and_store(self, server):
        """Submit, stream events, verify the merged store holds every
        completed evaluation (acceptance)."""
        status, job = post_json(server.url + "/jobs", SMOKE_JOB)
        assert status == 202
        assert job["kind"] == "pareto" and job["state"] in ("queued", "running")
        job_id = job["id"]

        # the follow stream ends by itself once the job is terminal
        with urllib.request.urlopen(f"{server.url}/jobs/{job_id}/events") as stream:
            events = [json.loads(line.decode("utf-8")) for line in stream]
        assert [e["seq"] for e in events] == list(range(len(events)))
        states = [e["state"] for e in events if e["type"] == "state"]
        assert states[0] == "running" and states[-1] == "completed"
        evaluations = [e for e in events if e["type"] == "evaluation"]
        assert len(evaluations) == SMOKE_JOB["iterations"]
        assert [e["completed"] for e in evaluations] == [1, 2, 3]
        for event in evaluations:
            assert set(event["objectives"]) == {"accuracy", "energy"}
            assert event["hypervolume"] >= 0.0

        final = wait_terminal(server.url, job_id)
        assert final["evals_completed"] == SMOKE_JOB["iterations"]
        assert final["evals_in_flight"] == 0
        assert final["result"]["front"], "terminal job carries its result"

        # acceptance: merged store == set of completed evaluations
        catalog = StoreCatalog(server.config.cache_dir)
        catalog.refresh()
        store_keys = {row["key"] for name, row in catalog.iter_rows() if name != "seed-demo"}
        event_keys = {",".join(str(v) for v in e["encoding"]) for e in evaluations}
        assert event_keys == store_keys

        # resumable, non-following reads of the finished stream
        with urllib.request.urlopen(
            f"{server.url}/jobs/{job_id}/events?since=2&follow=0"
        ) as stream:
            tail = [json.loads(line.decode("utf-8")) for line in stream]
        assert tail == [e for e in events if e["seq"] >= 2]

    def test_single_objective_job(self, server):
        status, job = post_json(
            server.url + "/jobs",
            {"objectives": "accuracy", "scale": "smoke", "model": "single_block", "iterations": 3},
        )
        assert status == 202 and job["kind"] == "search"
        final = wait_terminal(server.url, job["id"])
        assert final["state"] == "completed"
        result = final["result"]
        assert result["objective"] == "accuracy"
        assert result["num_evaluations"] == 3
        assert 0.0 <= result["best"]["accuracy"] <= 1.0
        assert len(result["incumbent_curve"]) == 3

    def test_concurrent_clients_see_consistent_snapshots(self, server):
        """N threads on /pareto + /recommend during a live job: every reply
        parses, no 500s, every front snapshot is internally non-dominated."""
        _, job = post_json(server.url + "/jobs", dict(SMOKE_JOB, iterations=4))
        failures = []
        done = threading.Event()

        def hammer():
            while not done.is_set():
                try:
                    status, front = get_json(server.url + "/pareto?objectives=accuracy,energy")
                    assert status == 200, f"/pareto -> {status}"
                    values = np.array(
                        [
                            [-p["objectives"]["accuracy"], p["objectives"]["energy"]]
                            for p in front["front"]
                        ]
                    )
                    assert values.size == 0 or non_dominated_mask(values).all()
                    status, reply = get_json(server.url + "/recommend?energy_budget=50")
                    assert status in (200, 404), f"/recommend -> {status}"
                    assert reply["rows_considered"] >= 3  # never below the seed
                    status, health = get_json(server.url + "/healthz")
                    assert status == 200 and health["status"] == "ok"
                except Exception as error:  # collected for the assert below
                    failures.append(repr(error))
                    return

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            final = wait_terminal(server.url, job["id"])
        finally:
            done.set()
            for thread in threads:
                thread.join(10.0)
        assert not failures, failures
        assert final["state"] == "completed"


class TestJobTrace:
    def test_trace_endpoint_serves_spans_summary_and_chrome(self, server):
        """Every job runs traced: the endpoint serves the flight-recorder
        ring in all three formats and the JSONL mirror lands on disk."""
        _, job = post_json(server.url + "/jobs", SMOKE_JOB)
        wait_terminal(server.url, job["id"])

        status, trace = get_json(f"{server.url}/jobs/{job['id']}/trace")
        assert status == 200
        assert trace["job_id"] == job["id"]
        assert trace["span_count"] == len(trace["spans"]) > 0
        names = {entry["name"] for entry in trace["spans"]}
        assert {"search", "evaluate", "cache.lookup", "train.epoch"} <= names
        # one trace per job, id derived from the job id
        assert {entry["trace_id"] for entry in trace["spans"]} == {f"t-{job['id']}"}
        # the JSONL mirror holds everything the ring saw (no drops expected
        # at smoke scale, so the two agree exactly)
        assert trace["jsonl_path"].endswith(f"{job['id']}.jsonl")
        from repro.trace import load_trace

        mirrored = load_trace(trace["jsonl_path"])
        assert len(mirrored) == trace["span_count"] + trace["dropped"]

        status, summary = get_json(f"{server.url}/jobs/{job['id']}/trace?format=summary")
        assert status == 200 and summary["job_id"] == job["id"]
        phase_names = {row["name"] for row in summary["phases"]}
        assert "evaluate" in phase_names and "search" in phase_names
        assert summary["evaluation_count"] >= 1
        assert summary["critical_path"][0]["name"] in ("pareto_front", "search")

        status, chrome = get_json(f"{server.url}/jobs/{job['id']}/trace?format=chrome")
        assert status == 200
        assert any(event.get("ph") == "X" for event in chrome["traceEvents"])

        status, body = get_json(f"{server.url}/jobs/{job['id']}/trace?format=bogus")
        assert status == 400 and "bogus" in body["error"]

    def test_trace_of_unknown_job_is_404(self, server):
        status, _ = get_json(server.url + "/jobs/job-deadbeef/trace")
        assert status == 404

    def test_observability_metrics_are_exported(self, server):
        page = server.registry.render()
        for name in (
            "repro_worker_occupancy",
            "repro_job_events_dropped_total",
            "repro_sparse_steps_total",
            "repro_dense_steps_total",
            "repro_sparse_probe_failures_total",
            "repro_store_lookup_hits_total",
            "repro_store_lookup_misses_total",
            "repro_store_lookup_hit_rate",
        ):
            assert f"# TYPE {name}" in page, name
        # idle server: no running jobs, so occupancy scrapes as zero
        assert "repro_worker_occupancy 0" in page

    def test_concurrent_metrics_scrapes_stay_consistent(self, server):
        """Satellite acceptance: parallel /metrics scrapes during a live job
        always parse, histogram buckets stay cumulative-monotone and end at
        the series count, and counters never go backwards."""
        _, job = post_json(server.url + "/jobs", dict(SMOKE_JOB, iterations=3))
        failures = []
        done = threading.Event()
        # label values may contain `{}` (route patterns like "/jobs/{id}"),
        # so the label block is matched greedily to the last closing brace
        sample_line = re.compile(
            r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?P<labels>\{.*\})? (?P<value>[0-9.e+-]+|\+Inf|NaN)$'
        )

        def scrape():
            last_requests_total = {}
            while not done.is_set():
                try:
                    with urllib.request.urlopen(server.url + "/metrics") as reply:
                        page = reply.read().decode("utf-8")
                    buckets = {}  # labels-without-le -> [counts in render order]
                    counts = {}
                    for line in page.strip().splitlines():
                        if line.startswith("#"):
                            continue
                        match = sample_line.match(line)
                        assert match, f"malformed sample line: {line!r}"
                        name, labels = match.group("name"), match.group("labels") or ""
                        if match.group("value") == "NaN":
                            continue
                        value = float(match.group("value").replace("+Inf", "inf"))
                        if name == "repro_http_request_seconds_bucket":
                            # drop the `le` label: what remains matches _count
                            series = re.sub(r',?le="[^"]*"', "", labels).replace("{}", "")
                            buckets.setdefault(series, []).append(value)
                        elif name == "repro_http_request_seconds_count":
                            counts[labels] = value
                        elif name == "repro_http_requests_total":
                            previous = last_requests_total.get(labels, 0.0)
                            assert value >= previous, f"counter went backwards: {line!r}"
                            last_requests_total[labels] = value
                    for series, series_counts in buckets.items():
                        assert series_counts == sorted(series_counts), (
                            f"non-monotone buckets for {series}: {series_counts}"
                        )
                        assert series_counts[-1] == counts[series], (
                            f"+Inf bucket disagrees with _count for {series}"
                        )
                except Exception as error:  # collected for the assert below
                    failures.append(repr(error))
                    return

        threads = [threading.Thread(target=scrape) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            final = wait_terminal(server.url, job["id"])
        finally:
            done.set()
            for thread in threads:
                thread.join(10.0)
        assert not failures, failures
        assert final["state"] == "completed"
        # a completed job did store lookups: the callback-backed counters moved
        page = server.registry.render()
        hit_line = [l for l in page.splitlines() if l.startswith("repro_store_lookup_misses_total")]
        assert hit_line and float(hit_line[0].split()[-1]) >= 1.0


class TestGracefulShutdown:
    def test_stop_during_active_job_drains_and_loses_no_rows(self, tmp_path):
        """Acceptance: SIGTERM-equivalent stop during a job — the job reaches
        a terminal state and every completed evaluation's row is on disk."""
        seed_cache(tmp_path)
        server = ReproServer(ServerConfig(cache_dir=str(tmp_path), port=0)).start()
        _, job = post_json(server.url + "/jobs", dict(SMOKE_JOB, iterations=6))
        # wait until at least one evaluation completed, then pull the plug
        deadline = time.time() + 120.0
        while time.time() < deadline:
            _, snapshot = get_json(f"{server.url}/jobs/{job['id']}")
            if snapshot["evals_completed"] >= 1 or snapshot["state"] in (
                "completed",
                "failed",
                "stopped",
            ):
                break
            time.sleep(0.02)
        server.stop()  # blocks until the job thread joined

        tracked = server.jobs.get(job["id"])
        assert tracked.state in ("stopped", "completed")
        assert tracked.error is None
        completed_events = [e for e in tracked.events if e.get("type") == "evaluation"]
        assert tracked.evals_completed == len(completed_events)
        # no completed evaluation lost: each one's row is in the merged store
        catalog = StoreCatalog(str(tmp_path))
        catalog.refresh()
        store_keys = {row["key"] for name, row in catalog.iter_rows() if name != "seed-demo"}
        event_keys = {",".join(str(v) for v in e["encoding"]) for e in completed_events}
        assert event_keys == store_keys
        # a stopped-early job still recorded a (partial) result
        if tracked.state == "stopped":
            assert tracked.result["stopped"] is True
            assert tracked.evals_completed < 6

    def test_shutdown_rejects_new_work_and_healthz_turns_503(self, tmp_path):
        seed_cache(tmp_path)
        server = ReproServer(ServerConfig(cache_dir=str(tmp_path), port=0)).start()
        server.health.shutting_down = True
        status, health = get_json(server.url + "/healthz")
        assert status == 503 and health["status"] == "shutting-down"
        server.jobs._shutting_down = True
        status, body = post_json(server.url + "/jobs", SMOKE_JOB)
        assert status == 400 and "shutting down" in body["error"]
        server.stop()
        server.stop()  # idempotent


@pytest.mark.skipif(os.name != "posix", reason="SIGTERM semantics are POSIX")
class TestServeCommand:
    def test_sigterm_exits_cleanly(self, tmp_path):
        seed_cache(tmp_path)
        env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--cache-dir",
                str(tmp_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            banner = process.stdout.readline()
            assert "serving on http://" in banner
            assert "3 cached evaluations" in banner
            match = re.search(r"http://[\d.]+:(\d+)", banner)
            status, health = get_json(f"http://127.0.0.1:{match.group(1)}/healthz")
            assert status == 200 and health["status"] == "ok"
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0
        assert "shutdown complete: jobs drained" in out


class TestMetricsRegistry:
    """Unit coverage for the hand-rolled registry's exposition correctness."""

    def test_histogram_buckets_are_cumulative_and_monotone(self):
        from repro.server.metrics import Histogram

        histogram = Histogram("t_seconds", "test", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        rendered = {}
        for line in histogram.render():
            if line.startswith("t_seconds_bucket"):
                label, count = line.split(" ")
                rendered[label.split('le="')[1].rstrip('"}')] = float(count)
        # each `le` count includes every smaller bucket, ending at the total
        assert rendered == {"0.01": 2, "0.1": 3, "1": 4, "+Inf": 5}
        counts = [rendered["0.01"], rendered["0.1"], rendered["1"], rendered["+Inf"]]
        assert counts == sorted(counts)

    def test_callback_backed_counter_tracks_aggregate_and_rejects_inc(self):
        from repro.server.metrics import Counter

        backing = {"total": 0.0}
        counter = Counter("t_total", "test")
        counter.set_function(lambda: backing["total"])
        assert counter.value == 0.0
        backing["total"] = 3.0
        assert counter.value == 3.0
        assert any(line.endswith(" 3") for line in counter.render())
        # the two sourcing modes cannot be mixed
        with pytest.raises(ValueError, match="callback-backed"):
            counter.inc()

    def test_counter_callback_failure_is_nan_and_recorded(self):
        from repro.server.metrics import Counter

        counter = Counter("t_broken_total", "test")

        def explode() -> float:
            raise RuntimeError("aggregate vanished")

        counter.set_function(explode)
        value = counter.value
        assert value != value  # NaN
        assert counter._unlabelled().last_error == "RuntimeError: aggregate vanished"
        counter.set_function(lambda: 2.0)
        assert counter.value == 2.0

    def test_gauge_callback_failure_is_nan_and_recorded(self):
        from repro.server.metrics import Gauge

        gauge = Gauge("t_rows", "test")

        def explode() -> float:
            raise RuntimeError("backing store vanished")

        gauge.set_function(explode)
        value = gauge.get()
        assert value != value  # NaN
        child = gauge._unlabelled()
        assert child.last_error == "RuntimeError: backing store vanished"
        gauge.set_function(lambda: 7.0)
        assert gauge.get() == 7.0
        assert child.last_error is None
