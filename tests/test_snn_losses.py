"""Tests of the spike-based loss functions."""

import numpy as np
import pytest

from repro.snn import (
    FiringRateRegularizer,
    SpikeCountCrossEntropy,
    SpikeCountMSE,
    SpikeRateCrossEntropy,
)
from repro.snn.metrics import SpikeStatistics
from repro.tensor import Tensor


def _per_step_outputs(counts: np.ndarray, num_steps: int):
    """Build per-step spike tensors whose sum equals ``counts``."""
    outputs = []
    remaining = counts.copy().astype(float)
    for _ in range(num_steps):
        step = np.minimum(remaining, 1.0)
        outputs.append(Tensor(step, requires_grad=True))
        remaining -= step
    return outputs


class TestSpikeCountCrossEntropy:
    def test_correct_class_with_most_spikes_gives_low_loss(self):
        counts = np.array([[8.0, 0.0, 1.0], [0.0, 9.0, 0.0]])
        loss = SpikeCountCrossEntropy()(Tensor(counts, requires_grad=True), np.array([0, 1]))
        assert loss.item() < 0.1

    def test_accepts_per_step_list(self):
        counts = np.array([[3.0, 0.0], [0.0, 3.0]])
        outputs = _per_step_outputs(counts, num_steps=4)
        loss = SpikeCountCrossEntropy()(outputs, np.array([0, 1]))
        assert np.isfinite(loss.item())

    def test_gradient_flows_to_steps(self):
        outputs = _per_step_outputs(np.array([[2.0, 1.0]]), num_steps=3)
        loss = SpikeCountCrossEntropy()(outputs, np.array([0]))
        loss.backward()
        assert outputs[0].grad is not None

    def test_empty_outputs_rejected(self):
        with pytest.raises(ValueError):
            SpikeCountCrossEntropy()([], np.array([0]))


class TestSpikeRateCrossEntropy:
    def test_equivalent_to_count_loss_up_to_temperature(self):
        counts = Tensor(np.array([[4.0, 0.0], [0.0, 4.0]]))
        targets = np.array([0, 1])
        rate_loss = SpikeRateCrossEntropy(num_steps=4)(counts, targets)
        count_loss = SpikeCountCrossEntropy()(counts, targets)
        # dividing by num_steps softens the logits, so the rate loss is larger here
        assert rate_loss.item() > count_loss.item()

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            SpikeRateCrossEntropy(num_steps=0)


class TestSpikeCountMSE:
    def test_zero_loss_at_exact_targets(self):
        loss_fn = SpikeCountMSE(num_steps=10, correct_rate=0.8, incorrect_rate=0.1)
        counts = np.array([[8.0, 1.0], [1.0, 8.0]])
        loss = loss_fn(Tensor(counts, requires_grad=True), np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0)

    def test_penalises_wrong_counts(self):
        loss_fn = SpikeCountMSE(num_steps=10)
        good = loss_fn(Tensor(np.array([[8.0, 1.0]])), np.array([0])).item()
        bad = loss_fn(Tensor(np.array([[1.0, 8.0]])), np.array([0])).item()
        assert bad > good

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            SpikeCountMSE(num_steps=5, correct_rate=0.2, incorrect_rate=0.5)


class TestFiringRateRegularizer:
    def test_zero_at_target(self):
        assert FiringRateRegularizer(target_rate=0.1)(0.1) == pytest.approx(0.0)

    def test_quadratic_away_from_target(self):
        reg = FiringRateRegularizer(target_rate=0.1, weight=2.0)
        assert reg(0.3) == pytest.approx(2.0 * 0.04)
        # symmetric around the target
        assert reg(0.3) == pytest.approx(reg(-0.1))

    def test_accepts_statistics(self):
        stats = SpikeStatistics(per_layer_rate={"a": 0.2, "b": 0.4}, per_layer_spikes={}, num_steps=4)
        reg = FiringRateRegularizer(target_rate=0.3, weight=1.0)
        assert reg(stats) == pytest.approx(0.0, abs=1e-12)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FiringRateRegularizer(target_rate=1.5)
        with pytest.raises(ValueError):
            FiringRateRegularizer(weight=-1.0)
