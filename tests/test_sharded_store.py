"""The sharded evaluation store must merge concurrent writers losslessly.

The acceptance check for the shard layout: two writer *processes* appending
concurrently to one sharded store produce a merged read view identical to a
single-writer :class:`PersistentEvaluationStore` fed the same rows.  CI
re-runs this file under ``REPRO_MP_START_METHOD=spawn`` so the writers
provably run in fresh interpreters.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.core.cache import (
    CachedObjective,
    PersistentEvaluationStore,
    ShardedEvaluationStore,
    evaluation_store_for,
)
from repro.core.objectives import SyntheticWeightObjective
from repro.core.search_space import BlockSearchInfo, SearchSpace
from repro.training.parallel import get_mp_context


def make_space(depth: int = 4) -> SearchSpace:
    return SearchSpace([BlockSearchInfo(depth=depth, name="block")], name="shard-test")


def _rows_for(tag: int, count: int):
    return {f"{tag},{i}": {"objective_value": float(i) + 10.0 * tag} for i in range(count)}


def _write_shard_rows(base, tag: int, count: int) -> None:
    """Process target: append ``count`` rows from one writer process."""
    store = ShardedEvaluationStore(base)
    for key, row in _rows_for(tag, count).items():
        store.put(key, row)


def _evaluate_specs(base, seed: int) -> None:
    """Process target: one search process evaluating through a shared cache."""
    store = ShardedEvaluationStore(base)
    cached = CachedObjective(SyntheticWeightObjective(), store=store)
    for spec in make_space().sample_batch(4, rng=seed):
        cached(spec)


class TestShardedStoreSingleProcess:
    def test_round_trip_and_reload_visibility(self, tmp_path):
        base = tmp_path / "evals.jsonl"
        writer_a = ShardedEvaluationStore(base, writer_id="a")
        writer_b = ShardedEvaluationStore(base, writer_id="b")
        writer_a.put("1,1", {"objective_value": 0.25})
        assert "1,1" not in writer_b
        writer_b.reload()
        assert writer_b.get("1,1")["objective_value"] == 0.25
        writer_b.put("2,2", {"objective_value": 0.5})
        writer_a.reload()
        assert len(writer_a) == 2

    def test_writers_append_only_to_their_own_shard(self, tmp_path):
        base = tmp_path / "evals.jsonl"
        writer_a = ShardedEvaluationStore(base, writer_id="a")
        writer_b = ShardedEvaluationStore(base, writer_id="b")
        writer_a.put("k", {"objective_value": 1.0})
        writer_b.put("q", {"objective_value": 2.0})
        shard_a = (writer_a.shard_dir / "a.jsonl").read_text()
        shard_b = (writer_b.shard_dir / "b.jsonl").read_text()
        assert "\"k\"" in shard_a and "\"q\"" not in shard_a
        assert "\"q\"" in shard_b and "\"k\"" not in shard_b

    def test_duplicate_keys_resolve_deterministically(self, tmp_path):
        """Shards merge in sorted filename order, so the lexicographically
        last shard wins a duplicate key — whatever order the writes landed."""
        base = tmp_path / "evals.jsonl"
        ShardedEvaluationStore(base, writer_id="b").put("k", {"objective_value": 2.0})
        ShardedEvaluationStore(base, writer_id="a").put("k", {"objective_value": 1.0})
        merged = ShardedEvaluationStore(base)
        assert len(merged) == 1
        assert merged.get("k")["objective_value"] == 2.0

    def test_legacy_single_file_is_oldest_layer(self, tmp_path):
        base = tmp_path / "evals.jsonl"
        legacy = PersistentEvaluationStore(base)
        legacy.put("old", {"objective_value": 1.0})
        legacy.put("shared", {"objective_value": 1.0})
        sharded = ShardedEvaluationStore(base, writer_id="w")
        assert sharded.get("old")["objective_value"] == 1.0
        sharded.put("shared", {"objective_value": 9.0})
        merged = ShardedEvaluationStore(base)
        assert merged.get("shared")["objective_value"] == 9.0
        assert len(merged) == 2

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        base = tmp_path / "evals.jsonl"
        writer = ShardedEvaluationStore(base, writer_id="w")
        writer.put("k", {"objective_value": 1.0})
        crashed = writer.shard_dir / "crashed.jsonl"
        crashed.write_text(json.dumps({"key": "ok", "objective_value": 2.0}) + "\n" + '{"key": "torn')
        merged = ShardedEvaluationStore(base)
        assert len(merged) == 2
        assert merged.skipped_lines == 1

    def test_unpickling_writes_to_the_process_shard(self, tmp_path):
        writer = ShardedEvaluationStore(tmp_path / "evals.jsonl", writer_id="parent")
        writer.put("k", {"objective_value": 1.0})
        clone = pickle.loads(pickle.dumps(writer))
        assert clone.writer_id != writer.writer_id
        assert clone.path != writer.path
        clone.put("q", {"objective_value": 2.0})
        assert "\"q\"" not in (writer.shard_dir / "parent.jsonl").read_text()
        writer.reload()
        assert "q" in writer

    def test_repeated_unpickling_reuses_one_shard_per_process(self, tmp_path):
        """Worker pools re-pickle the objective per task; that must not
        scatter one shard file per task — a process owns exactly one shard
        per base path."""
        writer = ShardedEvaluationStore(tmp_path / "evals.jsonl", writer_id="parent")
        writer.put("seed", {"objective_value": 0.0})
        first = pickle.loads(pickle.dumps(writer))
        second = pickle.loads(pickle.dumps(writer))
        assert first.writer_id == second.writer_id
        first.put("a", {"objective_value": 1.0})
        second.put("b", {"objective_value": 2.0})
        shards = sorted(p.name for p in writer.shard_dir.glob("*.jsonl"))
        assert len(shards) == 2  # parent's explicit shard + one process shard
        # a default-id store in this process also lands on the process shard
        default = ShardedEvaluationStore(tmp_path / "evals.jsonl")
        assert default.writer_id == first.writer_id

    def test_snapshot_store_is_shared_across_writers(self, tmp_path):
        """snapshot_store_for must key the .weights directory off the shared
        base name, not the per-writer shard, so a row persisted by one
        process replays its snapshot in any other."""
        import numpy as np

        from repro.core.cache import snapshot_store_for

        base = tmp_path / "evals.jsonl"
        writer_a = ShardedEvaluationStore(base, writer_id="a")
        writer_b = ShardedEvaluationStore(base, writer_id="b")
        snaps_a = snapshot_store_for(writer_a)
        snaps_b = snapshot_store_for(writer_b)
        assert snaps_a.directory == snaps_b.directory == base.with_suffix(".weights")
        digest = snaps_a.put({"w": np.ones(3)}, score=0.5)
        np.testing.assert_array_equal(snaps_b.get(digest)["w"], np.ones(3))

    def test_directory_path_uses_default_filename(self, tmp_path):
        store = ShardedEvaluationStore(tmp_path)
        assert store.base_path.name == PersistentEvaluationStore.FILENAME
        assert store.shard_dir.parent == tmp_path

    def test_store_factory_returns_sharded_store(self, tmp_path):
        store = evaluation_store_for(tmp_path, ["exp"], sharded=True, seed=0)
        assert isinstance(store, ShardedEvaluationStore)
        plain = evaluation_store_for(tmp_path, ["exp"], seed=0)
        assert type(plain) is PersistentEvaluationStore
        # both layouts share the same fingerprinted base name
        assert store.base_path == plain.path


class TestShardedStoreConcurrentProcesses:
    def test_two_writer_processes_match_single_writer_view(self, tmp_path):
        """Acceptance: concurrent writer processes produce a merged read view
        identical to a single-writer store fed the same rows."""
        base = tmp_path / "evals.jsonl"
        context = get_mp_context()
        workers = [
            context.Process(target=_write_shard_rows, args=(base, tag, 6)) for tag in (1, 2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
        assert all(worker.exitcode == 0 for worker in workers)

        reference = PersistentEvaluationStore(tmp_path / "reference.jsonl")
        for tag in (1, 2):
            for key, row in _rows_for(tag, 6).items():
                reference.put(key, row)

        merged = ShardedEvaluationStore(base)
        assert sorted(merged.keys()) == sorted(reference.keys())
        for key in reference.keys():
            assert merged.get(key)["objective_value"] == reference.get(key)["objective_value"]
        assert merged.skipped_lines == 0

    def test_two_search_processes_share_one_cache(self, tmp_path):
        """Two search processes evaluating through CachedObjective over one
        sharded store: the parent's merged view contains every evaluation."""
        base = tmp_path / "evals.jsonl"
        context = get_mp_context()
        workers = [context.Process(target=_evaluate_specs, args=(base, seed)) for seed in (0, 1)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
        assert all(worker.exitcode == 0 for worker in workers)

        merged = ShardedEvaluationStore(base)
        expected_keys = set()
        for seed in (0, 1):
            for spec in make_space().sample_batch(4, rng=seed):
                expected_keys.add(",".join(str(int(v)) for v in spec.encode()))
        assert set(merged.keys()) == expected_keys

        # a fresh CachedObjective answers everything from the merged view
        probe = SyntheticWeightObjective()
        cached = CachedObjective(probe, store=merged)
        for spec in make_space().sample_batch(4, rng=0):
            cached(spec)
        assert probe.num_evaluations == 0
        assert cached.hit_rate == pytest.approx(1.0)


class TestShardCompaction:
    def _populate(self, base):
        for writer, count in (("a", 4), ("b", 3)):
            store = ShardedEvaluationStore(base, writer_id=writer)
            for key, row in _rows_for(1 if writer == "a" else 2, count).items():
                store.put(key, row)

    def test_compacted_dir_yields_identical_merged_view(self, tmp_path):
        """Acceptance: compaction folds every shard into the base file without
        changing the merged view a fresh store reads."""
        base = tmp_path / "evals.jsonl"
        legacy = PersistentEvaluationStore(base)
        legacy.put("old", {"objective_value": 0.5})
        self._populate(base)
        before = {key: ShardedEvaluationStore(base).get(key) for key in ShardedEvaluationStore(base).keys()}

        summary = ShardedEvaluationStore(base).compact()
        assert summary["rows"] == len(before) == 8
        assert summary["shards_merged"] == 2 and summary["shards_kept"] == 0
        assert base.exists() and not base.with_suffix(".shards").exists()

        merged = ShardedEvaluationStore(base)
        assert {key: merged.get(key) for key in merged.keys()} == before
        # the compacted file is also a plain single-file store now
        plain = PersistentEvaluationStore(base)
        assert sorted(plain.keys()) == sorted(before)

    def test_compaction_preserves_duplicate_resolution(self, tmp_path):
        base = tmp_path / "evals.jsonl"
        ShardedEvaluationStore(base, writer_id="b").put("k", {"objective_value": 2.0})
        ShardedEvaluationStore(base, writer_id="a").put("k", {"objective_value": 1.0})
        winner = ShardedEvaluationStore(base).get("k")["objective_value"]
        ShardedEvaluationStore(base).compact()
        assert ShardedEvaluationStore(base).get("k")["objective_value"] == winner

    def test_compaction_keeps_shards_that_grew_mid_pass(self, tmp_path):
        """A shard appended to after being read must survive the pass (its
        unseen rows stay reachable through the normal shard merge)."""
        base = tmp_path / "evals.jsonl"
        self._populate(base)
        store = ShardedEvaluationStore(base)

        original_reload = ShardedEvaluationStore.reload
        fired = []

        def reload_then_append(self_store):
            count = original_reload(self_store)
            if not fired:  # only the compaction pass's own reload
                fired.append(True)
                late = ShardedEvaluationStore(base, writer_id="a")
                late.put("late", {"objective_value": 9.0})
            return count

        ShardedEvaluationStore.reload = reload_then_append
        try:
            summary = store.compact()
        finally:
            ShardedEvaluationStore.reload = original_reload
        assert summary["shards_kept"] == 1
        merged = ShardedEvaluationStore(base)
        assert merged.get("late")["objective_value"] == 9.0
        assert len(merged) == 8

    def test_writes_after_compaction_start_a_fresh_shard(self, tmp_path):
        base = tmp_path / "evals.jsonl"
        store = ShardedEvaluationStore(base, writer_id="w")
        store.put("k", {"objective_value": 1.0})
        store.compact()
        store.put("q", {"objective_value": 2.0})
        merged = ShardedEvaluationStore(base)
        assert sorted(merged.keys()) == ["k", "q"]
        assert merged.skipped_lines == 0

    def test_cli_cache_compact(self, tmp_path):
        from repro.cli import main

        base = tmp_path / "evals-abc123.jsonl"
        self._populate(base)
        assert main(["cache", "compact", "--cache-dir", str(tmp_path)]) == 0
        assert not base.with_suffix(".shards").exists()
        assert len(ShardedEvaluationStore(base)) == 7
        # idempotent / empty directories are fine
        assert main(["cache", "compact", "--cache-dir", str(tmp_path)]) == 0

    def test_reader_retries_when_a_shard_vanishes_mid_reload(self, tmp_path):
        """A reload racing a compaction (shard unlinked after the base was
        replaced) must retry and land on the post-compaction view instead of
        silently dropping the shard's rows."""
        base = tmp_path / "evals.jsonl"
        self._populate(base)
        reader = ShardedEvaluationStore(base, writer_id="reader")
        full_view = dict(zip(reader.keys(), (reader.get(k) for k in reader.keys())))

        ghost = reader.shard_dir / "zz-vanished.jsonl"
        original_source_paths = ShardedEvaluationStore._source_paths
        calls = {"n": 0}

        def racing_source_paths(self_store):
            calls["n"] += 1
            if calls["n"] == 1:
                # first attempt: the compaction already folded + unlinked a
                # shard this listing still names
                ShardedEvaluationStore(base, writer_id="compactor").compact()
                return original_source_paths(self_store) + [ghost]
            return original_source_paths(self_store)

        ShardedEvaluationStore._source_paths = racing_source_paths
        try:
            reader.reload()
        finally:
            ShardedEvaluationStore._source_paths = original_source_paths
        assert calls["n"] >= 2  # the vanished shard forced a second pass
        assert {key: reader.get(key) for key in reader.keys()} == full_view
