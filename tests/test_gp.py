"""Tests of the Gaussian-process substrate: kernels, regression, acquisitions."""

import numpy as np
import pytest

from repro.gp import (
    ExpectedImprovement,
    GaussianProcessRegressor,
    HammingKernel,
    Matern52Kernel,
    ProbabilityOfImprovement,
    RBFKernel,
    UpperConfidenceBound,
    get_acquisition,
)


class TestKernels:
    @pytest.mark.parametrize("kernel", [RBFKernel(), Matern52Kernel(), HammingKernel()])
    def test_symmetry(self, rng, kernel):
        x = rng.integers(0, 3, size=(6, 5)).astype(float)
        gram = kernel(x, x)
        np.testing.assert_allclose(gram, gram.T, atol=1e-12)

    @pytest.mark.parametrize("kernel", [RBFKernel(), Matern52Kernel(), HammingKernel()])
    def test_diagonal_is_variance(self, rng, kernel):
        x = rng.normal(size=(4, 3))
        gram = kernel(x, x)
        np.testing.assert_allclose(np.diag(gram), kernel.diag(x), atol=1e-12)
        np.testing.assert_allclose(np.diag(gram), np.ones(4), atol=1e-12)

    @pytest.mark.parametrize("kernel", [RBFKernel(), Matern52Kernel(), HammingKernel()])
    def test_positive_semidefinite(self, rng, kernel):
        x = rng.integers(0, 3, size=(8, 6)).astype(float)
        gram = kernel(x, x)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() > -1e-9

    def test_rbf_decreases_with_distance(self):
        kernel = RBFKernel(length_scale=1.0)
        near = kernel(np.zeros((1, 2)), np.full((1, 2), 0.1))[0, 0]
        far = kernel(np.zeros((1, 2)), np.full((1, 2), 3.0))[0, 0]
        assert near > far

    def test_rbf_identical_points_equal_variance(self):
        kernel = RBFKernel(variance=2.0)
        assert kernel(np.zeros((1, 3)), np.zeros((1, 3)))[0, 0] == pytest.approx(2.0)

    def test_hamming_counts_mismatches(self):
        kernel = HammingKernel(gamma=1.0)
        a = np.array([[0, 1, 2, 0]])
        b = np.array([[0, 1, 2, 1]])  # one mismatch out of 4
        assert kernel(a, b)[0, 0] == pytest.approx(np.exp(-0.25))

    def test_hamming_ignores_label_magnitude(self):
        kernel = HammingKernel()
        a, b = np.array([[0, 2]]), np.array([[0, 1]])
        c, d = np.array([[0, 1]]), np.array([[0, 2]])
        assert kernel(a, b)[0, 0] == pytest.approx(kernel(c, d)[0, 0])

    def test_matern_smoothness_params_validated(self):
        with pytest.raises(ValueError):
            Matern52Kernel(length_scale=-1.0)
        with pytest.raises(ValueError):
            RBFKernel(variance=0.0)
        with pytest.raises(ValueError):
            HammingKernel(gamma=0.0)

    def test_one_dimensional_input_promoted(self):
        kernel = RBFKernel()
        assert kernel(np.array([1.0, 2.0]), np.array([1.0, 2.0])).shape == (1, 1)


class TestGaussianProcess:
    def test_interpolates_training_points_with_small_noise(self, rng):
        x = rng.uniform(-2, 2, size=(8, 1))
        y = np.sin(x[:, 0])
        gp = GaussianProcessRegressor(RBFKernel(length_scale=0.7), noise=1e-8)
        gp.fit(x, y)
        mean, std = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-4)
        assert np.all(std < 0.05)

    def test_uncertainty_grows_away_from_data(self, rng):
        x = rng.uniform(-1, 1, size=(6, 1))
        y = x[:, 0] ** 2
        gp = GaussianProcessRegressor(RBFKernel(), noise=1e-6).fit(x, y)
        _, std_near = gp.predict(np.array([[0.0]]))
        _, std_far = gp.predict(np.array([[5.0]]))
        assert std_far[0] > std_near[0]

    def test_prediction_before_fit_returns_prior(self):
        gp = GaussianProcessRegressor()
        mean, std = gp.predict(np.zeros((3, 2)))
        np.testing.assert_allclose(mean, np.zeros(3))
        np.testing.assert_allclose(std, np.ones(3))

    def test_normalization_handles_large_targets(self, rng):
        x = rng.uniform(-1, 1, size=(10, 2))
        y = 1000.0 + 50.0 * x[:, 0]
        gp = GaussianProcessRegressor(RBFKernel(), noise=1e-6).fit(x, y)
        mean, _ = gp.predict(x)
        assert abs(mean.mean() - y.mean()) < 5.0

    def test_reasonable_generalisation(self, rng):
        x = np.linspace(-3, 3, 25).reshape(-1, 1)
        y = np.sin(x[:, 0])
        gp = GaussianProcessRegressor(RBFKernel(length_scale=1.0), noise=1e-6).fit(x, y)
        query = np.array([[0.5]])
        mean, _ = gp.predict(query)
        assert abs(mean[0] - np.sin(0.5)) < 0.05

    def test_log_marginal_likelihood_prefers_good_lengthscale(self, rng):
        x = np.linspace(-3, 3, 20).reshape(-1, 1)
        y = np.sin(x[:, 0])
        good = GaussianProcessRegressor(RBFKernel(length_scale=1.0), noise=1e-4).fit(x, y)
        bad = GaussianProcessRegressor(RBFKernel(length_scale=0.01), noise=1e-4).fit(x, y)
        assert good.log_marginal_likelihood() > bad.log_marginal_likelihood()

    def test_duplicate_points_do_not_crash(self):
        x = np.zeros((5, 3))
        y = np.ones(5)
        gp = GaussianProcessRegressor(HammingKernel(), noise=1e-6).fit(x, y)
        mean, std = gp.predict(np.zeros((1, 3)))
        assert np.isfinite(mean).all() and np.isfinite(std).all()

    def test_shape_validation(self):
        gp = GaussianProcessRegressor()
        with pytest.raises(ValueError):
            gp.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((0, 2)), np.zeros(0))

    def test_posterior_samples_shape(self, rng):
        x = rng.normal(size=(6, 2))
        y = rng.normal(size=6)
        gp = GaussianProcessRegressor(RBFKernel(), noise=1e-4).fit(x, y)
        samples = gp.sample_posterior(rng.normal(size=(4, 2)), num_samples=3, rng=rng)
        assert samples.shape == (3, 4)

    def test_categorical_objective_with_hamming_kernel(self, rng):
        """GP over a discrete encoding must rank a clearly better region first."""
        x = rng.integers(0, 3, size=(30, 6)).astype(float)
        y = (x == 2).sum(axis=1) * 0.1  # objective: fewer 2s is better (minimisation)
        gp = GaussianProcessRegressor(HammingKernel(gamma=2.0), noise=1e-4).fit(x, y)
        good = np.zeros((1, 6))
        bad = np.full((1, 6), 2.0)
        mean_good, _ = gp.predict(good)
        mean_bad, _ = gp.predict(bad)
        assert mean_good[0] < mean_bad[0]


class TestAcquisitions:
    def test_ucb_prefers_low_mean_and_high_std(self):
        acq = UpperConfidenceBound(kappa=1.0, decay=1.0)
        scores = acq(np.array([0.5, 0.5, 0.2]), np.array([0.0, 0.5, 0.0]), best_observed=0.4)
        assert np.argmax(scores) in (1, 2)
        # low mean wins when stds are equal
        scores2 = acq(np.array([0.5, 0.2]), np.array([0.1, 0.1]), best_observed=0.4)
        assert np.argmax(scores2) == 1

    def test_ucb_kappa_decay(self):
        acq = UpperConfidenceBound(kappa=2.0, decay=0.5, min_kappa=0.1)
        assert acq.effective_kappa(0) == 2.0
        assert acq.effective_kappa(1) == 1.0
        assert acq.effective_kappa(100) == pytest.approx(0.1)

    def test_ei_zero_when_no_improvement_possible(self):
        acq = ExpectedImprovement(xi=0.0)
        scores = acq(np.array([1.0]), np.array([1e-9]), best_observed=0.0)
        assert scores[0] == pytest.approx(0.0, abs=1e-6)

    def test_ei_positive_when_improvement_likely(self):
        acq = ExpectedImprovement(xi=0.0)
        scores = acq(np.array([-1.0]), np.array([0.1]), best_observed=0.0)
        assert scores[0] > 0.9

    def test_pi_bounded_in_unit_interval(self, rng):
        acq = ProbabilityOfImprovement()
        scores = acq(rng.normal(size=10), np.abs(rng.normal(size=10)) + 0.01, best_observed=0.0)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_registry(self):
        assert isinstance(get_acquisition("ucb"), UpperConfidenceBound)
        assert isinstance(get_acquisition("ei"), ExpectedImprovement)
        assert isinstance(get_acquisition("pi"), ProbabilityOfImprovement)
        instance = UpperConfidenceBound()
        assert get_acquisition(instance) is instance
        with pytest.raises(KeyError):
            get_acquisition("nope")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            UpperConfidenceBound(kappa=-1.0)
        with pytest.raises(ValueError):
            ExpectedImprovement(xi=-0.1)
        with pytest.raises(ValueError):
            UpperConfidenceBound(kappa=1.0, decay=1.5)
