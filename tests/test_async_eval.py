"""The async executor must beat the barrier without changing search semantics.

Three guarantees are load-bearing and covered here:

* **interface** — the executor's submit / next-completed protocol behaves
  identically in serial fallback and parallel mode (tickets, ordering,
  exception propagation, drain);
* **determinism** — result-carried weight updates are applied in submission
  order whatever the completion order, so an ``async_workers=2`` search
  accumulates *exactly* the ``WeightStore`` state a sequential replay of the
  same evaluation sequence produces (the PR acceptance check);
* **budget** — the async engine evaluates the same
  ``initial_points + num_iterations * batch_size`` budget as the batch path,
  never proposes a duplicate of an evaluated or in-flight candidate, and
  drives the callback at iteration boundaries.

CI re-runs this file under ``REPRO_MP_START_METHOD=spawn`` so every workload
provably crosses a fresh-interpreter process boundary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.async_eval import (
    AsyncEvaluationExecutor,
    WeightUpdateSequencer,
    evaluate_ordered,
)
from repro.core.bayes_opt import BayesianOptimizer
from repro.core.multi_fidelity import FidelitySchedule, MultiFidelityObjective, SuccessiveHalvingSearch
from repro.core.objectives import SyntheticWeightObjective
from repro.core.search_space import BlockSearchInfo, SearchSpace
from repro.core.weight_sharing import WeightStore, WeightUpdate
from repro.training.snn_trainer import SNNTrainingConfig


def make_space(depth: int = 4) -> SearchSpace:
    return SearchSpace([BlockSearchInfo(depth=depth, name="block")], name="async-test")


def assert_stores_equal(first: WeightStore, second: WeightStore) -> None:
    state_a, state_b = first.state_dict(), second.state_dict()
    assert sorted(state_a) == sorted(state_b)
    for key in state_a:
        np.testing.assert_allclose(state_a[key], state_b[key], err_msg=key)


class TestWeightUpdateSequencer:
    def _update(self, value: float, score: float) -> WeightUpdate:
        return WeightUpdate(state={"w": np.full(3, value), f"k{value}": np.ones(1)}, score=score)

    def test_out_of_order_matches_in_order(self):
        updates = [self._update(float(i), score=0.1 * i) for i in range(4)]

        ordered = WeightStore()
        sequencer = WeightUpdateSequencer(ordered)
        for ticket in range(4):
            sequencer.add(ticket, updates[ticket])

        shuffled = WeightStore()
        sequencer = WeightUpdateSequencer(shuffled)
        for ticket in (2, 0, 3, 1):
            sequencer.add(ticket, updates[ticket])
        assert sequencer.pending == 0
        assert sequencer.applied == 4
        assert_stores_equal(ordered, shuffled)

    def test_buffers_until_gap_closes(self):
        sequencer = WeightUpdateSequencer(WeightStore())
        sequencer.add(1, self._update(1.0, 0.5))
        assert sequencer.applied == 0 and sequencer.pending == 1
        sequencer.add(0, self._update(0.0, 0.9))
        assert sequencer.applied == 2 and sequencer.pending == 0

    def test_none_updates_are_skipped_but_sequenced(self):
        sequencer = WeightUpdateSequencer(WeightStore())
        sequencer.add(1, self._update(1.0, 0.5))
        sequencer.add(0, None)
        assert sequencer.applied == 1 and sequencer.pending == 0

    def test_duplicate_ticket_raises(self):
        sequencer = WeightUpdateSequencer(WeightStore())
        sequencer.add(0, None)
        with pytest.raises(ValueError):
            sequencer.add(0, None)


class TestAsyncEvaluationExecutor:
    def test_serial_mode_is_fifo(self):
        objective = SyntheticWeightObjective(weight_store=WeightStore())
        specs = make_space().sample_batch(4, rng=0)
        with AsyncEvaluationExecutor(objective, workers=1) as executor:
            assert not executor.is_parallel
            tickets = [executor.submit(spec) for spec in specs]
            assert tickets == [0, 1, 2, 3]
            completed = list(executor.drain())
        assert [done.ticket for done in completed] == tickets
        assert objective.num_evaluations == 4

    def test_parallel_mode_completes_every_ticket(self):
        objective = SyntheticWeightObjective(weight_store=WeightStore())
        specs = make_space().sample_batch(5, rng=1)
        with AsyncEvaluationExecutor(objective, workers=2) as executor:
            for spec in specs:
                executor.submit(spec)
            completed = {done.ticket: done for done in executor.drain()}
        assert sorted(completed) == [0, 1, 2, 3, 4]
        for ticket, spec in enumerate(specs):
            np.testing.assert_array_equal(completed[ticket].spec.encode(), spec.encode())
            # results must describe the submitted spec, whatever worker ran it
            np.testing.assert_array_equal(completed[ticket].result.spec.encode(), spec.encode())

    def test_unpicklable_objective_falls_back_to_serial(self):
        store = WeightStore()
        base = SyntheticWeightObjective(weight_store=store)
        executor = AsyncEvaluationExecutor(lambda spec: base(spec), workers=4)
        try:
            assert not executor.is_parallel
            executor.submit(make_space().sample(rng=0))
            done = executor.next_completed()
            assert done.ticket == 0
        finally:
            executor.close()

    def test_next_completed_without_submissions_raises(self):
        executor = AsyncEvaluationExecutor(SyntheticWeightObjective(), workers=1)
        with pytest.raises(RuntimeError):
            executor.next_completed()

    def test_evaluate_ordered_aligns_results_and_sequences_store(self):
        space = make_space()
        specs = space.sample_batch(5, rng=3)

        sequential = SyntheticWeightObjective(weight_store=WeightStore())
        expected = [sequential(spec) for spec in specs]

        objective = SyntheticWeightObjective(weight_store=WeightStore())
        objective.defer_updates = True
        results = evaluate_ordered(objective, specs, workers=2, weight_store=objective.weight_store)
        assert [r.objective_value for r in results] == pytest.approx(
            [r.objective_value for r in expected]
        )
        assert_stores_equal(sequential.weight_store, objective.weight_store)


class TestAsyncBayesianOptimizer:
    def run_async(self, workers: int, rng: int = 7):
        objective = SyntheticWeightObjective(weight_store=WeightStore())
        optimizer = BayesianOptimizer(
            make_space(),
            objective,
            initial_points=4,
            batch_size=2,
            candidate_pool_size=12,
            async_workers=workers,
            rng=rng,
        )
        history = optimizer.optimize(3)
        return objective, optimizer, history

    def test_async_budget_matches_batch_path(self):
        _, _, history = self.run_async(workers=2)
        assert len(history) == 4 + 3 * 2
        assert [r.source for r in history] == ["init"] * 4 + ["bo"] * 6

    def test_async_never_duplicates_candidates(self):
        _, _, history = self.run_async(workers=3)
        keys = [record.spec.encode().tobytes() for record in history]
        assert len(keys) == len(set(keys))

    def test_propose_async_excludes_in_flight_candidates(self):
        """A still-running candidate must never be proposed again (the
        exclusion keys must match the dedup set's raw-encoding dtype)."""
        space = make_space()
        optimizer = BayesianOptimizer(
            space,
            SyntheticWeightObjective(weight_store=WeightStore()),
            initial_points=3,
            batch_size=1,
            candidate_pool_size=96,
            async_workers=1,
            rng=0,
        )
        optimizer.optimize(0)  # evaluate the initial points only
        in_flight = space.sample_batch(6, rng=1, exclude=set(optimizer._dedup_keys()))
        in_flight_keys = {spec.encode().tobytes() for spec in in_flight}
        for iteration in range(1, 16):
            proposal = optimizer._propose_async(in_flight, iteration=iteration)
            assert proposal is not None
            assert proposal.encode().tobytes() not in in_flight_keys

    def test_async_workers2_accumulates_exactly_sequential_store_state(self):
        """PR acceptance: whatever order workers finish in, the shared store
        ends in the state a sequential run over the submission sequence
        produces (updates are applied in ticket order, never completion
        order)."""
        objective, _, history = self.run_async(workers=2)
        assert not objective.weight_store.is_empty
        assert sorted(record.ticket for record in history) == list(range(len(history)))

        replay = SyntheticWeightObjective(weight_store=WeightStore())
        for record in sorted(history, key=lambda record: record.ticket):
            replay(record.spec)
        assert_stores_equal(objective.weight_store, replay.weight_store)

    def test_async_serial_mode_accumulates_exactly_sequential_store_state(self):
        objective, _, history = self.run_async(workers=1)
        # serial fallback: completion order == submission order
        assert [record.ticket for record in history] == list(range(len(history)))
        replay = SyntheticWeightObjective(weight_store=WeightStore())
        for record in history:
            replay(record.spec)
        assert_stores_equal(objective.weight_store, replay.weight_store)

    def test_async_restores_defer_flag(self):
        objective, optimizer, _ = self.run_async(workers=2)
        assert objective.defer_updates is False
        assert optimizer.weight_store is objective.weight_store

    def test_async_callback_fires_on_iteration_boundaries(self):
        calls = []
        objective = SyntheticWeightObjective(weight_store=WeightStore())
        optimizer = BayesianOptimizer(
            make_space(),
            objective,
            initial_points=3,
            batch_size=2,
            candidate_pool_size=10,
            async_workers=2,
            rng=5,
        )
        optimizer.optimize(2, callback=lambda iteration, history: calls.append((iteration, len(history))))
        assert calls[0] == (0, 3)
        assert [iteration for iteration, _ in calls] == [0, 1, 2]
        assert calls[-1][1] == 3 + 2 * 2

    def test_async_continues_prepopulated_history(self):
        objective, optimizer, history = self.run_async(workers=2)
        before = len(history)
        optimizer.optimize(1)
        assert len(optimizer.history) == before + 2

    def test_negative_async_workers_rejected(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(make_space(), SyntheticWeightObjective(), async_workers=-1)


class TestSuccessiveHalvingWorkers:
    def make_objective(self) -> MultiFidelityObjective:
        base = SyntheticWeightObjective(weight_store=WeightStore())
        # MultiFidelityObjective swaps the epoch count per rung; the synthetic
        # objective ignores it, which is exactly what makes the worker-count
        # comparison deterministic
        base.training_config = SNNTrainingConfig(epochs=1, batch_size=8)
        return MultiFidelityObjective(base)

    def run(self, workers: int):
        objective = self.make_objective()
        search = SuccessiveHalvingSearch(
            make_space(),
            objective,
            schedule=FidelitySchedule.geometric(1, 4),
            initial_candidates=6,
            workers=workers,
            rng=13,
        )
        history = search.optimize()
        return objective.base, history

    def test_workers2_matches_sequential_history_and_store(self):
        base_seq, history_seq = self.run(workers=1)
        base_par, history_par = self.run(workers=2)
        assert not base_seq.weight_store.is_empty
        assert [r.objective_value for r in history_par] == pytest.approx(
            [r.objective_value for r in history_seq]
        )
        assert_stores_equal(base_seq.weight_store, base_par.weight_store)
        assert base_par.defer_updates is False

    def test_at_fidelity_is_picklable(self):
        import pickle

        evaluator = self.make_objective().at_fidelity(2)
        clone = pickle.loads(pickle.dumps(evaluator))
        spec = make_space().sample(rng=2)
        assert clone(spec).objective_value == pytest.approx(evaluator(spec).objective_value)
