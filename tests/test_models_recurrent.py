"""Tests of backward (recurrent) skip connections — the future-work extension."""

import numpy as np
import pytest

from repro.core.adjacency import ASC, DSC, NO_CONNECTION, BlockAdjacency
from repro.models.blocks import BlockSpec, LayerSpec
from repro.models.recurrent import (
    BackwardConnection,
    BackwardSearchSpace,
    RecurrentDAGBlock,
    enumerate_backward_positions,
    extend_search_space_with_backward,
)
from repro.models import build_single_block_template
from repro.snn import reset_states
from repro.snn.temporal import detach_states
from repro.tensor import Tensor


def _spec(depth=3, channels=4, in_channels=2):
    return BlockSpec(
        in_channels=in_channels,
        layers=[LayerSpec("conv3x3", channels) for _ in range(depth)],
        name="recurrent-test",
    )


class TestBackwardConnection:
    def test_validation(self):
        BackwardConnection(source_node=3, destination_layer=0, code=ASC)  # ok
        with pytest.raises(ValueError):
            BackwardConnection(source_node=0, destination_layer=0, code=ASC)
        with pytest.raises(ValueError):
            BackwardConnection(source_node=1, destination_layer=2, code=ASC)  # forward direction
        with pytest.raises(ValueError):
            BackwardConnection(source_node=3, destination_layer=0, code=NO_CONNECTION)

    def test_enumerate_positions(self):
        positions = enumerate_backward_positions(3)
        # layer 0 can receive from nodes 1..3, layer 1 from 2..3, layer 2 from 3
        assert len(positions) == 6
        assert (3, 0) in positions and (3, 2) in positions
        assert (1, 1) not in positions


class TestRecurrentDAGBlock:
    def test_builds_and_runs_with_asc_backward(self, rng):
        block = RecurrentDAGBlock(
            _spec(),
            backward_connections=[BackwardConnection(3, 0, ASC)],
            spiking=True,
            rng=0,
        )
        reset_states(block)
        x = Tensor(rng.random((2, 2, 6, 6)))
        out1 = block(x)
        out2 = block(x)
        assert out1.shape == out2.shape == (2, 4, 6, 6)

    def test_first_step_matches_nonrecurrent_block(self, rng):
        """With zero delayed input, step 1 must equal the plain DAGBlock output."""
        from repro.models.blocks import DAGBlock

        spec = _spec()
        plain = DAGBlock(spec, BlockAdjacency(3), spiking=False, rng=5)
        recurrent = RecurrentDAGBlock(
            spec, backward_connections=[BackwardConnection(3, 0, ASC)], spiking=False, rng=5
        )
        recurrent.load_state_dict(plain.state_dict(), strict=False)
        recurrent.reset_state()
        x = Tensor(rng.random((1, 2, 5, 5)))
        np.testing.assert_allclose(recurrent(x).data, plain(x).data)

    def test_second_step_differs_because_of_feedback(self, rng):
        block = RecurrentDAGBlock(
            _spec(), backward_connections=[BackwardConnection(3, 0, ASC)], spiking=False, rng=0
        )
        block.reset_state()
        x = Tensor(rng.random((1, 2, 5, 5)))
        first = block(x).data.copy()
        second = block(x).data
        assert not np.allclose(first, second)

    def test_reset_state_restores_first_step_behaviour(self, rng):
        block = RecurrentDAGBlock(
            _spec(), backward_connections=[BackwardConnection(3, 0, ASC)], spiking=False, rng=0
        )
        x = Tensor(rng.random((1, 2, 5, 5)))
        block.reset_state()
        first = block(x).data.copy()
        block(x)
        block.reset_state()
        again = block(x).data
        np.testing.assert_allclose(first, again)

    def test_dsc_backward_grows_layer_input(self):
        block = RecurrentDAGBlock(
            _spec(depth=3, channels=4, in_channels=2),
            backward_connections=[BackwardConnection(3, 0, DSC)],
            spiking=False,
            rng=0,
        )
        # layer 0 input: block input (2) + delayed block output (4)
        assert block.layer_input_channels()[0] == 6

    def test_dsc_backward_runs_over_multiple_steps(self, rng):
        block = RecurrentDAGBlock(
            _spec(), backward_connections=[BackwardConnection(2, 0, DSC)], spiking=True, rng=0
        )
        reset_states(block)
        x = Tensor(rng.random((1, 2, 5, 5)))
        for _ in range(3):
            out = block(x)
        assert out.shape == (1, 4, 5, 5)

    def test_projection_created_for_channel_mismatch(self):
        block = RecurrentDAGBlock(
            _spec(depth=3, channels=4, in_channels=2),
            backward_connections=[BackwardConnection(1, 0, ASC)],  # 4ch output added to 2ch input
            rng=0,
        )
        assert len(block.backward_projections) == 1

    def test_invalid_connections_rejected(self):
        with pytest.raises(ValueError):
            RecurrentDAGBlock(_spec(depth=3), backward_connections=[BackwardConnection(5, 0, ASC)], rng=0)
        dw_spec = BlockSpec(
            in_channels=4,
            layers=[LayerSpec("conv1x1", 4), LayerSpec("dwconv3x3", 4), LayerSpec("conv1x1", 4)],
        )
        with pytest.raises(ValueError):
            RecurrentDAGBlock(dw_spec, backward_connections=[BackwardConnection(3, 1, DSC)], rng=0)

    def test_bptt_gradient_flows_through_feedback(self, rng):
        block = RecurrentDAGBlock(
            _spec(), backward_connections=[BackwardConnection(3, 0, ASC)], spiking=False, rng=0
        )
        block.reset_state()
        x0 = Tensor(rng.random((1, 2, 5, 5)), requires_grad=True)
        block(x0)
        out = block(Tensor(rng.random((1, 2, 5, 5))))
        out.sum().backward()
        # the first input influences the second output only through the feedback path
        assert x0.grad is not None and np.abs(x0.grad).sum() > 0

    def test_detach_state_cuts_feedback_graph(self, rng):
        block = RecurrentDAGBlock(
            _spec(), backward_connections=[BackwardConnection(3, 0, ASC)], spiking=False, rng=0
        )
        block.reset_state()
        x0 = Tensor(rng.random((1, 2, 5, 5)), requires_grad=True)
        block(x0)
        detach_states(block)
        out = block(Tensor(rng.random((1, 2, 5, 5))))
        out.sum().backward()
        assert x0.grad is None or np.abs(x0.grad).sum() == 0


class TestBackwardSearchSpace:
    def test_dimensions(self):
        template = build_single_block_template(input_channels=2, num_classes=4, channels=4, depth=3)
        forward_space = template.search_space()
        joint = extend_search_space_with_backward(forward_space)
        assert isinstance(joint, BackwardSearchSpace)
        assert joint.encoding_length() == forward_space.encoding_length() + 6
        assert joint.size() == forward_space.size() * 2 ** 6  # ASC-or-none per backward position

    def test_encode_decode_roundtrip(self):
        template = build_single_block_template(input_channels=2, num_classes=4, channels=4, depth=3)
        joint = extend_search_space_with_backward(template.search_space())
        forward_spec, backward = joint.sample(rng=3)
        encoding = joint.encode(forward_spec, backward)
        decoded_forward, decoded_backward = joint.decode(encoding)
        assert decoded_forward == forward_spec
        assert [
            {(c.source_node, c.destination_layer, c.code) for c in block} for block in decoded_backward
        ] == [{(c.source_node, c.destination_layer, c.code) for c in block} for block in backward]

    def test_default_has_no_backward_connections(self):
        template = build_single_block_template(input_channels=2, num_classes=4, channels=4, depth=3)
        joint = extend_search_space_with_backward(template.search_space())
        forward_spec, backward = joint.default()
        assert forward_spec.total_skips() == 0
        assert all(not block for block in backward)

    def test_allowed_codes_validated(self):
        template = build_single_block_template(input_channels=2, num_classes=4, channels=4, depth=3)
        with pytest.raises(ValueError):
            BackwardSearchSpace(template.search_space(), allowed_codes=(7,))

    def test_decode_rejects_bad_length_and_codes(self):
        template = build_single_block_template(input_channels=2, num_classes=4, channels=4, depth=3)
        joint = extend_search_space_with_backward(template.search_space())
        with pytest.raises(ValueError):
            joint.decode(np.zeros(3))
        bad = np.zeros(joint.encoding_length(), dtype=int)
        bad[-1] = DSC  # DSC not allowed for backward positions by default
        with pytest.raises(ValueError):
            joint.decode(bad)

    def test_sampled_configurations_build_runnable_blocks(self, rng):
        template = build_single_block_template(input_channels=2, num_classes=4, channels=4, depth=3)
        joint = extend_search_space_with_backward(template.search_space())
        forward_spec, backward = joint.sample(rng=1)
        block = RecurrentDAGBlock(
            template.block_specs[0],
            adjacency=forward_spec.blocks[0],
            backward_connections=backward[0],
            spiking=True,
            rng=0,
        )
        reset_states(block)
        out = block(Tensor(rng.random((1, 4, 6, 6))))
        assert out.shape[1] == template.block_specs[0].out_channels
