"""Tests of the graph-free evaluation substrate (PR 5 acceptance criteria).

Four concerns, each pinned independently:

* **equality** — the inference fast path (GEMM convolution, fused in-place
  neuron stepping, streaming temporal aggregation) must produce outputs
  **bit-identical** to the autograd path, for every op, neuron variant,
  reset mechanism and model template;
* **workspace aliasing** — pooled scratch buffers must never leak into a
  returned tensor, under interleaved and nested evaluations;
* **latency plumbing** — the timed ``latency_ms`` metric must flow through
  ``EvaluationResult.metrics`` → store rows → cache replay → the multi-
  objective engine, including sharded async runs;
* **hyperparameter adaptation** — ``BayesianOptimizer(hyperopt_every=K)``
  must leave the K=∞ proposal sequence untouched and actually refit when
  enabled.
"""

import numpy as np
import pytest

from repro.core.bayes_opt import BayesianOptimizer
from repro.core.cache import CachedObjective, PersistentEvaluationStore, result_to_row, row_to_result, spec_key
from repro.core.multi_objective import BUILTIN_OBJECTIVES, MultiObjectiveBayesianOptimizer
from repro.core.objectives import AccuracyDropObjective, SyntheticWeightObjective
from repro.core.search_space import BlockSearchInfo, SearchSpace
from repro.core.weight_sharing import WeightStore
from repro.data import load_dataset
from repro.experiments import get_scale
from repro.experiments.pareto_front import run_pareto_front
from repro.gp import HammingKernel, tune_kernel
from repro.models import build_single_block_template, get_template
from repro.snn import ALIFNeuron, IFNeuron, LeakyIntegrator, LIFNeuron, SynapticNeuron, TemporalRunner
from repro.snn.temporal import run_temporal
from repro.tensor import Tensor, conv2d, max_pool2d, avg_pool2d, no_grad
from repro.tensor.workspace import WorkspacePool, clear_workspaces
from repro.training.evaluation import measure_latency_ms
from repro.training.snn_trainer import SNNTrainingConfig


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# ---------------------------------------------------------------------------
# tensor-layer equality
# ---------------------------------------------------------------------------

class TestOpsFastPath:
    def test_no_grad_outputs_are_graph_free(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        with no_grad():
            out = (a * b + 1.0).relu().sum()
        assert not out.requires_grad
        assert out._prev == ()
        assert out._backward is None

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_elementwise_and_reductions_match_grad_path(self, rng, dtype):
        a = Tensor(rng.normal(size=(4, 5)).astype(dtype), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)).astype(dtype), requires_grad=True)
        cases = [
            lambda: a + b,
            lambda: a - b,
            lambda: a * b,
            lambda: a / (b * b + 1.0),
            lambda: a.tanh(),
            lambda: a.sigmoid(),
            lambda: a.relu(),
            lambda: a.clip(-0.5, 0.5),
            lambda: a.sum(axis=1),
            lambda: a.mean(axis=0, keepdims=True),
            lambda: a.max(axis=1),
            lambda: a @ b.transpose(),
        ]
        for case in cases:
            reference = case().data
            with no_grad():
                fast = case().data
            assert np.array_equal(reference, fast)
            # the dtype-parametrised substrate must not silently promote
            assert fast.dtype == np.dtype(dtype)


class TestConvFastPath:
    @pytest.mark.parametrize(
        "groups,c_in,c_out,padding,stride,bias",
        [
            (1, 8, 16, 1, 1, True),
            (1, 3, 5, 2, 2, False),
            (2, 8, 12, 0, 2, True),
            (16, 16, 16, 1, 1, False),  # depthwise (MobileNetV2)
        ],
    )
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_bit_identical_to_autograd_path(self, rng, groups, c_in, c_out, padding, stride, bias, dtype):
        x = Tensor(rng.normal(size=(4, c_in, 11, 11)).astype(dtype))
        w = Tensor(rng.normal(size=(c_out, c_in // groups, 3, 3)).astype(dtype), requires_grad=True)
        b = Tensor(rng.normal(size=(c_out,)).astype(dtype), requires_grad=True) if bias else None
        reference = conv2d(x, w, b, stride=stride, padding=padding, groups=groups)
        assert reference.requires_grad
        with no_grad():
            fast = conv2d(x, w, b, stride=stride, padding=padding, groups=groups)
        assert not fast.requires_grad
        assert np.array_equal(reference.data, fast.data)
        assert fast.data.dtype == np.dtype(dtype)

    def test_chained_convs_handle_strided_inputs(self, rng):
        """A fast-path conv output is a transposed view; the next conv must cope."""
        x = Tensor(rng.normal(size=(2, 4, 8, 8)))
        w1 = Tensor(rng.normal(size=(6, 4, 3, 3)), requires_grad=True)
        w2 = Tensor(rng.normal(size=(3, 6, 3, 3)), requires_grad=True)
        reference = conv2d(conv2d(x, w1, padding=1), w2, padding=1).data
        with no_grad():
            fast = conv2d(conv2d(x, w1, padding=1), w2, padding=1).data
        assert np.array_equal(reference, fast)

    def test_pooling_matches_autograd_path(self, rng):
        x = Tensor(rng.normal(size=(3, 4, 9, 9)), requires_grad=True)
        for pool, kwargs in [
            (max_pool2d, dict(kernel_size=3, stride=2, padding=1)),
            (max_pool2d, dict(kernel_size=2)),
            (avg_pool2d, dict(kernel_size=2, stride=1, padding=1)),
            (avg_pool2d, dict(kernel_size=3)),
        ]:
            reference = pool(x, **kwargs).data
            with no_grad():
                fast = pool(x, **kwargs).data
            assert np.array_equal(reference, fast)


class TestWorkspaceNonAliasing:
    def test_results_survive_later_calls(self, rng):
        """Nothing returned by a fast-path kernel may live in pooled scratch."""
        w = Tensor(rng.normal(size=(6, 4, 3, 3)))
        with no_grad():
            first = conv2d(Tensor(rng.normal(size=(2, 4, 8, 8))), w, padding=1)
            snapshot = first.data.copy()
            # same geometry (would reuse the same scratch buffers) ...
            conv2d(Tensor(rng.normal(size=(2, 4, 8, 8))), w, padding=1)
            # ... and different geometries (would grow/reshape the buffers)
            conv2d(Tensor(rng.normal(size=(1, 4, 16, 16))), w, padding=2)
            max_pool2d(Tensor(rng.normal(size=(2, 4, 8, 8))), 2, padding=1)
        assert np.array_equal(first.data, snapshot)

    def test_interleaved_evaluations_are_independent(self, rng):
        """Two models evaluated turn by turn (nested evaluation pattern)."""
        template = build_single_block_template(input_channels=2, num_classes=4, channels=4)
        model_a = template.build(spiking=True, rng=0)
        model_b = template.build(spiking=True, rng=1)
        runner_a = TemporalRunner(model_a, num_steps=3)
        runner_b = TemporalRunner(model_b, num_steps=3)
        batch = rng.random((2, 2, 8, 8))
        with no_grad():
            solo_a = runner_a(batch).data.copy()
            solo_b = runner_b(batch).data.copy()
            inter_a = runner_a(batch)
            inter_b = runner_b(batch)
            assert np.array_equal(inter_a.data, solo_a)
            assert np.array_equal(inter_b.data, solo_b)
            # evaluating b again must not disturb a's retained result
            runner_b(batch)
        assert np.array_equal(inter_a.data, solo_a)

    def test_pool_signature_mismatch_invalidates_contents(self):
        pool = WorkspacePool()
        buf, matched = pool.buffer("k", (2, 3), signature=("a",))
        assert not matched
        buf[...] = 7.0
        again, matched = pool.buffer("k", (2, 3), signature=("a",))
        assert matched and again.base is not None or again.size == buf.size
        _, matched = pool.buffer("k", (2, 3), signature=("b",))
        assert not matched
        clear_workspaces()  # smoke: the thread-local clear hook works


# ---------------------------------------------------------------------------
# neuron and template equality
# ---------------------------------------------------------------------------

NEURON_FACTORIES = {
    "lif": lambda reset: LIFNeuron(beta=0.9, reset_mechanism=reset),
    "if": lambda reset: IFNeuron(reset_mechanism=reset),
    "alif": lambda reset: ALIFNeuron(beta=0.85, adaptation=0.3, reset_mechanism=reset),
    "synaptic": lambda reset: SynapticNeuron(alpha=0.7, beta=0.9, reset_mechanism=reset),
}


class TestNeuronFastPath:
    @pytest.mark.parametrize("kind", sorted(NEURON_FACTORIES))
    @pytest.mark.parametrize("reset", ["subtract", "zero", "none"])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_sequence_bit_identical(self, rng, kind, reset, dtype):
        inputs = [(rng.normal(size=(3, 4, 5, 5)) * 0.8).astype(dtype) for _ in range(6)]

        def run(fast):
            neuron = NEURON_FACTORIES[kind](reset)
            neuron.reset_state()
            membranes, spikes = [], []
            for frame in inputs:
                if fast:
                    with no_grad():
                        out = neuron(Tensor(frame))
                else:
                    out = neuron(Tensor(frame))
                assert out.data.dtype == np.dtype(dtype)
                membranes.append(neuron.membrane.data.copy())
                spikes.append(out.data.copy())
            return membranes, spikes

        ref_membranes, ref_spikes = run(fast=False)
        fast_membranes, fast_spikes = run(fast=True)
        for a, b in zip(ref_membranes, fast_membranes):
            assert np.array_equal(a, b)
        for a, b in zip(ref_spikes, fast_spikes):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("kind", sorted(NEURON_FACTORIES))
    def test_mixed_grad_and_inference_steps_stay_consistent(self, rng, kind):
        """Alternating grad-mode and fused steps must agree with pure grad mode."""
        inputs = [rng.normal(size=(2, 3)) * 0.9 for _ in range(6)]
        reference = NEURON_FACTORIES[kind]("subtract")
        mixed = NEURON_FACTORIES[kind]("subtract")
        reference.reset_state()
        mixed.reset_state()
        for t, frame in enumerate(inputs):
            ref_out = reference(Tensor(frame))
            if t % 2 == 0:
                with no_grad():
                    out = mixed(Tensor(frame))
            else:
                out = mixed(Tensor(frame))
            assert np.array_equal(ref_out.data, out.data)
            assert np.array_equal(reference.membrane.data, mixed.membrane.data)

    def test_running_spike_rate_matches_record(self, rng):
        neuron = LIFNeuron(beta=0.9)
        neuron.reset_state()
        neuron.record_spikes = True
        with no_grad():
            for _ in range(5):
                neuron(Tensor(rng.normal(size=(4, 4)) * 1.5))
        assert len(neuron.spike_record) == 5
        expected = float(np.mean([step.mean() for step in neuron.spike_record]))
        assert neuron.firing_rate() == pytest.approx(expected)
        assert neuron.recorded_spike_total() == pytest.approx(
            float(sum(step.sum() for step in neuron.spike_record))
        )
        neuron.reset_state()
        assert neuron.spike_record == []
        assert neuron.firing_rate() == 0.0
        assert neuron.recorded_steps() == 0

    def test_monitor_records_sums_without_retaining_history(self, rng):
        """The firing-rate monitor never holds the O(num_steps) spike history."""
        from repro.snn.metrics import FiringRateMonitor, average_firing_rate

        template = build_single_block_template(input_channels=2, num_classes=4, channels=4)
        model = template.build(spiking=True, rng=0)
        model.eval()
        runner = TemporalRunner(model, num_steps=5)
        monitor = FiringRateMonitor(model)
        with monitor, no_grad():
            runner(rng.random((2, 2, 8, 8)))
        stats = monitor.statistics()
        assert stats.num_steps == 5
        assert 0.0 <= stats.average_firing_rate <= 1.0
        assert average_firing_rate(model) == pytest.approx(stats.average_firing_rate)
        for layer in monitor._layers.values():
            assert layer.spike_record == []  # sums only, no retained arrays
            assert layer.record_history  # restored by __exit__

    def test_leaky_integrator_matches(self, rng):
        inputs = [rng.normal(size=(2, 5)) for _ in range(5)]
        reference, fast = LeakyIntegrator(0.95), LeakyIntegrator(0.95)
        for frame in inputs:
            ref_out = reference(Tensor(frame))
            with no_grad():
                out = fast(Tensor(frame))
            assert np.array_equal(ref_out.data, out.data)


class TestTemplateFastPath:
    @pytest.mark.parametrize("name", ["resnet18", "mobilenetv2", "densenet121", "single_block"])
    @pytest.mark.parametrize("readout", ["membrane_mean", "membrane_last", "spike_count"])
    def test_temporal_runner_bit_identical(self, rng, name, readout):
        template = get_template(name, input_channels=2, num_classes=5)
        model = template.build(spiking=True, rng=0)
        model.eval()
        runner = TemporalRunner(model, num_steps=4, readout=readout)
        batch = rng.random((2, 2, 8, 8))
        reference = runner(batch).data.copy()
        with no_grad():
            fast = runner(batch).data.copy()
            repeat = runner(batch).data.copy()
        assert np.array_equal(reference, fast)
        assert np.array_equal(reference, repeat)

    def test_searched_architecture_bit_identical(self, rng):
        """A non-default spec (real skip wiring: DSC concat + ASC add) matches too."""
        template = get_template("resnet18", input_channels=2, num_classes=4)
        spec = template.search_space().sample(rng=7)
        model = template.build(spec, spiking=True, rng=0)
        model.eval()
        runner = TemporalRunner(model, num_steps=4)
        batch = rng.random((2, 2, 8, 8))
        reference = runner(batch).data.copy()
        with no_grad():
            fast = runner(batch).data
        assert np.array_equal(reference, fast)


class TestRunTemporalStreaming:
    def test_membrane_last_owns_its_data(self, rng):
        """The returned scores must survive the next batch overwriting buffers."""
        template = build_single_block_template(input_channels=2, num_classes=4, channels=4)
        model = template.build(spiking=True, rng=0)
        model.eval()
        with no_grad():
            first = run_temporal(model, rng.random((2, 2, 8, 8)), num_steps=3, readout="membrane_last")
            snapshot = first.data.copy()
            run_temporal(model, rng.random((2, 2, 8, 8)), num_steps=3, readout="membrane_last")
        assert np.array_equal(first.data, snapshot)

    def test_streaming_matches_retained_aggregation(self, rng):
        """Running sums must agree with the old stack-then-reduce semantics."""
        from repro.snn.temporal import aggregate_outputs, reset_states

        template = build_single_block_template(input_channels=2, num_classes=4, channels=4)
        model = template.build(spiking=True, rng=0)
        model.eval()
        batch = rng.random((2, 2, 8, 8))
        for readout in ("membrane_mean", "spike_count", "spike_rate"):
            collected = []
            with no_grad():
                run_temporal(
                    model, batch, num_steps=4, readout=readout,
                    step_callback=lambda _t, out: collected.append(Tensor(out.data.copy())),
                )
                streamed = run_temporal(model, batch, num_steps=4, readout=readout)
            reference = aggregate_outputs(collected, readout)
            np.testing.assert_allclose(streamed.data, reference.data, rtol=1e-12, atol=1e-12)
        reset_states(model)

    def test_step_callback_outputs_are_retainable(self, rng):
        """The spike-based losses retain per-step callback outputs; under
        no_grad they must be owning copies, not views of reused buffers."""
        template = get_template("resnet18", input_channels=2, num_classes=4)
        model = template.build(spiking=True, rng=0)
        model.eval()
        batch = rng.random((2, 2, 8, 8))
        reference = []
        run_temporal(model, batch, num_steps=4, step_callback=lambda _t, out: reference.append(out.data.copy()))
        collected = []
        with no_grad():
            run_temporal(model, batch, num_steps=4, step_callback=lambda _t, out: collected.append(out))
        assert len(collected) == len(reference) == 4
        # retained WITHOUT copying: each tensor must still hold its own step's
        # values (an aliased buffer would make every entry equal the last step)
        for kept, expected in zip(collected, reference):
            assert np.array_equal(kept.data, expected)
        # and summing them reproduces the spike_count readout
        with no_grad():
            count = run_temporal(model, batch, num_steps=4, readout="spike_count")
        np.testing.assert_allclose(np.sum([out.data for out in collected], axis=0), count.data, rtol=1e-12)

    def test_gradients_still_flow_through_streaming_aggregation(self, rng):
        template = build_single_block_template(input_channels=2, num_classes=4, channels=4)
        model = template.build(spiking=True, rng=0)
        out = run_temporal(model, rng.random((2, 2, 8, 8)), num_steps=3, readout="membrane_mean")
        assert out.requires_grad
        out.sum().backward()
        grads = [p.grad for p in model.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)


# ---------------------------------------------------------------------------
# latency-metric plumbing
# ---------------------------------------------------------------------------

SMOKE = get_scale("smoke")


class TestLatencyMetric:
    def test_measure_latency_ms_protocol(self, rng):
        template = build_single_block_template(input_channels=2, num_classes=4, channels=4)
        model = template.build(spiking=True, rng=0)
        runner = TemporalRunner(model, num_steps=3)
        latency = measure_latency_ms(runner, rng.random((2, 2, 8, 8)), runs=3, warmup=1)
        assert latency > 0.0
        assert model.training  # mode restored
        with pytest.raises(ValueError):
            measure_latency_ms(runner, rng.random((2, 2, 8, 8)), runs=0)

    def test_objective_records_latency_and_cache_replays_it(self, tmp_path):
        splits = load_dataset("cifar10-dvs", num_samples=60, image_size=8, num_steps=3, seed=0)
        template = build_single_block_template(input_channels=2, num_classes=10, channels=4)
        objective = AccuracyDropObjective(
            template=template,
            splits=splits,
            training_config=SNNTrainingConfig(epochs=1, batch_size=8, num_steps=3, seed=0),
            weight_store=WeightStore(),
            measure_energy=True,
            measure_latency=True,
            latency_runs=2,
        )
        spec = template.search_space().default_spec()
        result = objective(spec)
        assert result.metrics["latency_ms"] > 0.0
        assert "latency_steps" in result.metrics  # the proxy survives alongside

        # row round trip preserves the measured value exactly
        row = result_to_row(result)
        assert row_to_result(row, spec).metrics["latency_ms"] == result.metrics["latency_ms"]

        # a persistent-store hit replays the same latency without re-timing
        store = PersistentEvaluationStore(tmp_path / "evals.jsonl")
        cached = CachedObjective(objective, store=store)
        first = cached(spec)

        def forbidden(_spec):
            raise AssertionError("store hit must not re-evaluate")

        replayed = CachedObjective(forbidden, store=PersistentEvaluationStore(tmp_path / "evals.jsonl"))(spec)
        assert replayed.metrics["latency_ms"] == first.metrics["latency_ms"]
        assert spec_key(spec) in store

    def test_builtin_latency_objective_reads_measured_metric(self):
        assert BUILTIN_OBJECTIVES["latency"].metric == "latency_ms"
        assert BUILTIN_OBJECTIVES["latency_steps"].metric == "latency_steps"

    def test_multi_objective_engine_accepts_latency(self):
        space = SearchSpace([BlockSearchInfo(depth=4), BlockSearchInfo(depth=4)])
        optimizer = MultiObjectiveBayesianOptimizer(
            space,
            SyntheticWeightObjective(),
            objectives=("accuracy", "energy", "latency"),
            initial_points=4,
            batch_size=1,
            candidate_pool_size=32,
            rng=0,
        )
        history = optimizer.optimize(4)
        assert all("latency_ms" in record.metrics for record in history)
        assert len(optimizer.front) >= 1

    @pytest.mark.parametrize(
        "engine", [dict(), dict(async_workers=2, cache_sharded=True)], ids=["serial", "async-sharded"]
    )
    def test_cached_rerun_replays_latency_front(self, tmp_path, engine):
        """Acceptance: pareto over accuracy/energy/latency replays identically —
        the wall-clock latency measured on the cold run is what the warm run
        reads back, so 0 fresh evaluations reproduce the exact front."""
        kwargs = dict(
            scale=SMOKE,
            dataset="cifar10-dvs",
            model="single_block",
            objectives=("accuracy", "energy", "latency"),
            iterations=3,
            seed=0,
            cache_dir=str(tmp_path),
            **engine,
        )
        cold = run_pareto_front(**kwargs)
        assert cold.fresh_evaluations == cold.num_evaluations
        assert all("latency" in point.objectives for point in cold.front)
        assert all(point.objectives["latency"] > 0 for point in cold.front)
        warm = run_pareto_front(**kwargs)
        assert warm.fresh_evaluations == 0
        cold_front = [(tuple(p.encoding), sorted(p.objectives.items())) for p in cold.front]
        warm_front = [(tuple(p.encoding), sorted(p.objectives.items())) for p in warm.front]
        assert cold_front == warm_front

    def test_latency_run_ignores_stores_without_latency(self, tmp_path):
        """A cache written by a plain accuracy/energy run (rows without
        latency_ms) must not be replayed into a latency search: the latency
        configuration is part of the store fingerprint, so the latency run
        opens its own store and re-evaluates instead of crashing on a
        missing metric."""
        kwargs = dict(
            scale=SMOKE,
            dataset="cifar10-dvs",
            model="single_block",
            iterations=3,
            seed=0,
            cache_dir=str(tmp_path),
        )
        plain = run_pareto_front(objectives=("accuracy", "energy"), **kwargs)
        assert plain.fresh_evaluations == plain.num_evaluations
        timed = run_pareto_front(objectives=("accuracy", "energy", "latency"), **kwargs)
        assert timed.fresh_evaluations == timed.num_evaluations  # no stale hits
        assert all(point.objectives["latency"] > 0 for point in timed.front)


# ---------------------------------------------------------------------------
# GP hyperparameter adaptation
# ---------------------------------------------------------------------------

class TestHyperparameterAdaptation:
    @staticmethod
    def _run(hyperopt_every=None):
        space = SearchSpace([BlockSearchInfo(depth=5), BlockSearchInfo(depth=5)])
        optimizer = BayesianOptimizer(
            space,
            SyntheticWeightObjective(),
            initial_points=6,
            batch_size=2,
            candidate_pool_size=48,
            rng=0,
            hyperopt_every=hyperopt_every,
        )
        optimizer.optimize(5)
        return optimizer

    def test_disabled_adaptation_is_a_seeded_no_op(self):
        """K=∞ (the default) pins the exact proposal sequence of the old engine."""
        baseline = self._run()
        disabled = self._run(hyperopt_every=None)
        assert [tuple(r.spec.encode()) for r in baseline.history] == [
            tuple(r.spec.encode()) for r in disabled.history
        ]
        assert disabled.hyperopt_refits == 0

    def test_adaptation_refits_amortised(self):
        adapted = self._run(hyperopt_every=4)
        assert adapted.hyperopt_refits >= 1
        # refits happen at most once per hyperopt_every observations
        assert adapted.hyperopt_refits <= len(adapted.history) // 4
        assert len(adapted.history) == len(self._run().history)

    def test_tune_kernel_improves_marginal_likelihood(self, rng):
        x = rng.integers(0, 3, size=(40, 10)).astype(float)
        y = np.cos(x).sum(axis=1) + 0.05 * rng.normal(size=40)
        kernel = HammingKernel(gamma=0.1)  # deliberately mis-scaled
        from repro.gp import GaussianProcessRegressor

        before = GaussianProcessRegressor(kernel=kernel, noise=1e-3).fit(x, y).log_marginal_likelihood()
        tuned, lml = tune_kernel(kernel, x, y, noise=1e-3)
        assert lml >= before
        assert kernel.gamma == 0.1  # input kernel never mutated
        after = GaussianProcessRegressor(kernel=tuned, noise=1e-3).fit(x, y).log_marginal_likelihood()
        assert after == pytest.approx(lml)

    def test_invalid_hyperopt_every_rejected(self):
        space = SearchSpace([BlockSearchInfo(depth=4)])
        with pytest.raises(ValueError):
            BayesianOptimizer(space, SyntheticWeightObjective(), hyperopt_every=0)
