"""Tests of Bayesian optimization, random search and weight sharing.

To keep these fast the optimizers are exercised against *synthetic* objectives
defined directly on the architecture encoding (no network training); the
integration with real training objectives is covered by the adapter smoke
tests in ``test_integration.py``.
"""

import numpy as np
import pytest

from repro.core.adjacency import ASC, DSC, BlockAdjacency
from repro.core.bayes_opt import BayesianOptimizer, OptimizationHistory, OptimizationRecord
from repro.core.objectives import EvaluationResult, Objective
from repro.core.random_search import RandomSearch
from repro.core.search_space import ArchitectureSpec, BlockSearchInfo, SearchSpace
from repro.core.weight_sharing import WeightStore
from repro.gp.kernels import Matern52Kernel
from repro.nn import Linear, Sequential, ReLU


class CountingObjective(Objective):
    """Synthetic objective: fewer missing ASC connections = better.

    The optimum is the all-ASC architecture; the value is deterministic and
    cheap, which lets the tests verify search behaviour exactly.
    """

    def __init__(self, noise=0.0, seed=0):
        self.calls = 0
        self.noise = noise
        self._rng = np.random.default_rng(seed)

    def __call__(self, spec: ArchitectureSpec) -> EvaluationResult:
        self.calls += 1
        encoding = spec.encode()
        value = float(np.sum(encoding != ASC)) / max(len(encoding), 1)
        if self.noise:
            value += self.noise * self._rng.standard_normal()
        accuracy = 1.0 - value
        return EvaluationResult(spec=spec, objective_value=value, accuracy=accuracy, firing_rate=0.1)


def _space(depth=4, blocks=1):
    return SearchSpace([BlockSearchInfo(depth=depth, name=f"b{i}") for i in range(blocks)])


class TestOptimizationHistory:
    def _record(self, value, iteration=0):
        spec = ArchitectureSpec([BlockAdjacency(3)])
        return OptimizationRecord(iteration=iteration, spec=spec, objective_value=value, accuracy=1 - value)

    def test_best_and_incumbent(self):
        history = OptimizationHistory()
        for value in (0.5, 0.3, 0.4, 0.1):
            history.append(self._record(value))
        assert history.best().objective_value == 0.1
        assert history.incumbent_values() == [0.5, 0.3, 0.3, 0.1]
        assert history.incumbent_accuracies() == [0.5, 0.7, 0.7, 0.9]

    def test_best_on_empty_raises(self):
        with pytest.raises(ValueError):
            OptimizationHistory().best()

    def test_len_and_iter(self):
        history = OptimizationHistory()
        history.append(self._record(0.2))
        assert len(history) == 1
        assert list(history)[0].objective_value == 0.2


class TestBayesianOptimizer:
    def test_finds_good_solution_on_synthetic_objective(self):
        space = _space(depth=4)
        objective = CountingObjective()
        optimizer = BayesianOptimizer(space, objective, initial_points=3, candidate_pool_size=40, rng=0)
        history = optimizer.optimize(8)
        best = history.best()
        # after 11 evaluations of a 729-point space BO should be well below random-start quality
        assert best.objective_value <= 0.5
        assert objective.calls == len(history)

    def test_bo_beats_random_start(self):
        space = _space(depth=4)
        optimizer = BayesianOptimizer(space, CountingObjective(), initial_points=3, rng=0)
        history = optimizer.optimize(8)
        initial_best = min(r.objective_value for r in list(history)[:3])
        final_best = history.best().objective_value
        assert final_best <= initial_best

    def test_default_spec_evaluated_first(self):
        space = _space(depth=3)
        optimizer = BayesianOptimizer(space, CountingObjective(), initial_points=2, include_default=True, rng=0)
        history = optimizer.optimize(0)
        first = list(history)[0]
        assert first.spec == space.default_spec()
        assert first.source == "init"

    def test_no_duplicate_evaluations(self):
        space = _space(depth=3)
        optimizer = BayesianOptimizer(space, CountingObjective(), initial_points=3, rng=1)
        history = optimizer.optimize(6)
        keys = [record.spec.encode().tobytes() for record in history]
        assert len(keys) == len(set(keys))

    def test_batch_proposals(self):
        space = _space(depth=4)
        optimizer = BayesianOptimizer(space, CountingObjective(), initial_points=2, batch_size=3, rng=0)
        history = optimizer.optimize(2)
        assert history.num_evaluations == 2 + 2 * 3
        # proposals within an iteration are distinct
        per_iteration = {}
        for record in history:
            per_iteration.setdefault(record.iteration, []).append(record.spec.encode().tobytes())
        for keys in per_iteration.values():
            assert len(keys) == len(set(keys))

    def test_small_space_exhausts_gracefully(self):
        space = SearchSpace([BlockSearchInfo(depth=2)])  # 3 architectures total
        optimizer = BayesianOptimizer(space, CountingObjective(), initial_points=2, rng=0)
        history = optimizer.optimize(10)
        assert history.num_evaluations <= 3

    def test_callback_invoked(self):
        space = _space(depth=3)
        seen = []
        optimizer = BayesianOptimizer(space, CountingObjective(), initial_points=2, rng=0)
        optimizer.optimize(2, callback=lambda it, hist: seen.append(it))
        assert seen == [0, 1, 2]

    def test_alternative_kernel_and_acquisition(self):
        space = _space(depth=3)
        optimizer = BayesianOptimizer(
            space, CountingObjective(), kernel=Matern52Kernel(), acquisition="ei", initial_points=2, rng=0
        )
        history = optimizer.optimize(3)
        assert history.num_evaluations == 5

    def test_best_spec_matches_history(self):
        space = _space(depth=3)
        optimizer = BayesianOptimizer(space, CountingObjective(), initial_points=2, rng=0)
        optimizer.optimize(3)
        assert optimizer.best_spec() == optimizer.history.best().spec

    def test_parameter_validation(self):
        space = _space(depth=3)
        with pytest.raises(ValueError):
            BayesianOptimizer(space, CountingObjective(), initial_points=0)
        with pytest.raises(ValueError):
            BayesianOptimizer(space, CountingObjective(), batch_size=0)
        with pytest.raises(ValueError):
            BayesianOptimizer(space, CountingObjective(), candidate_pool_size=0)
        optimizer = BayesianOptimizer(space, CountingObjective())
        with pytest.raises(ValueError):
            optimizer.optimize(-1)


class TestRandomSearch:
    def test_evaluates_requested_number(self):
        space = _space(depth=4)
        objective = CountingObjective()
        search = RandomSearch(space, objective, rng=0)
        history = search.optimize(10)
        assert history.num_evaluations == 10
        assert objective.calls == 10

    def test_no_replacement(self):
        space = _space(depth=3)
        search = RandomSearch(space, CountingObjective(), rng=0)
        history = search.optimize(15)
        keys = [record.spec.encode().tobytes() for record in history]
        assert len(keys) == len(set(keys))

    def test_exhausts_small_space(self):
        space = SearchSpace([BlockSearchInfo(depth=2)])
        search = RandomSearch(space, CountingObjective(), rng=0)
        history = search.optimize(10)
        assert history.num_evaluations == 3

    def test_include_default(self):
        space = _space(depth=3)
        search = RandomSearch(space, CountingObjective(), include_default=True, rng=0)
        history = search.optimize(4)
        assert list(history)[0].spec == space.default_spec()

    def test_incumbent_monotonically_improves(self):
        space = _space(depth=4)
        search = RandomSearch(space, CountingObjective(), rng=2)
        history = search.optimize(12)
        incumbents = history.incumbent_values()
        assert all(incumbents[i + 1] <= incumbents[i] for i in range(len(incumbents) - 1))

    def test_bo_converges_at_least_as_well_as_rs_on_average(self):
        """Sanity check of the Fig. 3 qualitative claim on the synthetic objective."""
        bo_final, rs_final = [], []
        for seed in range(3):
            space = _space(depth=4)
            bo = BayesianOptimizer(space, CountingObjective(noise=0.02, seed=seed), initial_points=3, rng=seed)
            bo_final.append(bo.optimize(7).best().objective_value)
            rs = RandomSearch(space, CountingObjective(noise=0.02, seed=seed), rng=seed)
            rs_final.append(rs.optimize(10).best().objective_value)
        assert np.mean(bo_final) <= np.mean(rs_final) + 0.05


class TestWeightStore:
    def _model(self, seed=0, hidden=5):
        rng = np.random.default_rng(seed)
        return Sequential(Linear(4, hidden, rng=rng), ReLU(), Linear(hidden, 2, rng=rng))

    def test_from_model_and_apply(self):
        source = self._model(seed=0)
        target = self._model(seed=1)
        store = WeightStore.from_model(source)
        report = store.apply_to(target)
        assert report["loaded"] == len(store)
        np.testing.assert_allclose(source[0].weight.data, target[0].weight.data)

    def test_empty_store_is_noop(self):
        store = WeightStore()
        model = self._model()
        before = model[0].weight.data.copy()
        assert store.apply_to(model) == {"loaded": 0, "skipped": 0}
        np.testing.assert_allclose(model[0].weight.data, before)

    def test_shape_mismatch_skipped(self):
        store = WeightStore.from_model(self._model(seed=0, hidden=5))
        target = self._model(seed=1, hidden=7)
        report = store.apply_to(target)
        assert report["skipped"] > 0
        assert report["loaded"] > 0  # final layer bias and first layer bias mismatched? first Linear weight mismatched, second layer weight mismatched

    def test_update_only_if_better(self):
        store = WeightStore.from_model(self._model(seed=0))
        better = self._model(seed=1)
        worse = self._model(seed=2)
        assert store.update_from(better, score=0.8, only_if_better=True)
        assert not store.update_from(worse, score=0.5, only_if_better=True)
        target = self._model(seed=3)
        store.apply_to(target)
        np.testing.assert_allclose(target[0].weight.data, better[0].weight.data)

    def test_merge_from_adds_missing_keys_only(self):
        small = Sequential(Linear(4, 5, rng=np.random.default_rng(0)))
        store = WeightStore.from_model(small)
        big = Sequential(Linear(4, 5, rng=np.random.default_rng(1)), ReLU(), Linear(5, 2, rng=np.random.default_rng(2)))
        added = store.merge_from(big)
        assert added > 0
        # existing key kept from the original model
        np.testing.assert_allclose(store.get("0.weight"), small[0].weight.data)

    def test_keys_and_len(self):
        store = WeightStore.from_model(self._model())
        assert len(store) == len(store.keys()) > 0
        assert store.get("not-a-key") is None


class TestCandidatePoolReuse:
    """The persistent candidate pool and its incrementally-grown encoded matrix."""

    def _seeded(self, rng=0, **kwargs):
        defaults = dict(initial_points=3, candidate_pool_size=24, batch_size=2)
        defaults.update(kwargs)
        return BayesianOptimizer(_space(depth=4), CountingObjective(), rng=rng, **defaults)

    def test_cached_matrix_matches_reencoding_path(self):
        """Satellite acceptance: proposals with the incrementally-maintained
        encoded matrix are identical to re-encoding the pool every iteration."""
        cached = self._seeded(rng=7)
        reencoded = self._seeded(rng=7)
        reencoded._pool_matrix_cache_enabled = False
        h1 = cached.optimize(6)
        h2 = reencoded.optimize(6)
        assert [r.spec.encode().tolist() for r in h1] == [r.spec.encode().tolist() for r in h2]
        assert [r.objective_value for r in h1] == [r.objective_value for r in h2]

    def test_pool_persists_and_tops_up_across_iterations(self):
        optimizer = self._seeded()
        optimizer.optimize(1)
        survivors = list(optimizer._pool_keys)
        assert len(optimizer._pool_specs) == optimizer.candidate_pool_size - optimizer.batch_size
        optimizer.optimize(1)
        # previous survivors are still candidates (minus any that were proposed)
        assert len(set(survivors) & set(optimizer._pool_keys)) >= len(survivors) - optimizer.batch_size
        assert optimizer._pool_matrix.shape == (
            len(optimizer._pool_specs),
            optimizer.search_space.encoding_length(),
        )

    def test_pool_matrix_rows_track_specs(self):
        optimizer = self._seeded()
        optimizer.optimize(3)
        optimizer._refresh_pool()
        expected = np.array([s.encode() for s in optimizer._pool_specs], dtype=np.float64)
        np.testing.assert_array_equal(optimizer._pool_matrix, expected)
        assert optimizer._pool_keys == [s.encode().tobytes() for s in optimizer._pool_specs]

    def test_pool_never_contains_evaluated_candidates(self):
        optimizer = self._seeded()
        history = optimizer.optimize(5)
        evaluated = {r.spec.encode().tobytes() for r in history}
        assert not (evaluated & set(optimizer._pool_keys))

    def test_pool_resets_on_history_swap(self):
        optimizer = self._seeded()
        optimizer.optimize(2)
        assert optimizer._pool_specs
        optimizer.history = OptimizationHistory()
        optimizer.optimize(1)
        assert len(optimizer._pool_specs) <= optimizer.candidate_pool_size
        keys = [r.spec.encode().tobytes() for r in optimizer.history]
        assert len(keys) == len(set(keys))
