"""Tests of the incremental GP machinery: rank-k updates and fantasy posteriors.

The contract under test is *exact* equivalence: observing points through
:meth:`GaussianProcessRegressor.update` must produce the same posterior
(mean and variance to 1e-8) as refitting from scratch on the concatenated
data, across random sequences, batch shapes and the jitter-escalation path.
"""

import numpy as np
import pytest

from repro.core.bayes_opt import BayesianOptimizer
from repro.core.objectives import EvaluationResult, Objective
from repro.core.search_space import BlockSearchInfo, SearchSpace
from repro.gp import (
    FantasizedPosterior,
    GaussianProcessRegressor,
    HammingKernel,
    Matern52Kernel,
    RBFKernel,
)

KERNELS = [RBFKernel(), Matern52Kernel(), HammingKernel()]


def _random_sequence(rng, total, dim):
    x = rng.integers(0, 3, size=(total, dim)).astype(np.float64)
    y = rng.normal(size=total)
    return x, y


class TestIncrementalUpdateEquivalence:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_update_matches_full_refit(self, kernel, seed):
        """Rank-1 and rank-k updates agree with a full refit to 1e-8."""
        rng = np.random.default_rng(seed)
        x, y = _random_sequence(rng, 40, 7)
        incremental = GaussianProcessRegressor(kernel, noise=1e-3).fit(x[:8], y[:8])
        step = 0
        index = 8
        while index < len(x):
            # alternate rank-1 and rank-3 updates across the sequence
            size = 1 if step % 2 == 0 else 3
            incremental.update(x[index : index + size], y[index : index + size])
            index += size
            step += 1
        full = GaussianProcessRegressor(kernel, noise=1e-3).fit(x, y)

        query = rng.integers(0, 3, size=(25, 7)).astype(np.float64)
        mean_inc, std_inc = incremental.predict(query)
        mean_full, std_full = full.predict(query)
        np.testing.assert_allclose(mean_inc, mean_full, atol=1e-8)
        np.testing.assert_allclose(std_inc, std_full, atol=1e-8)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_update_matches_refit_through_jitter_escalation(self, kernel):
        """Near-duplicate points force the fallback; the result still matches a refit."""
        rng = np.random.default_rng(3)
        x = rng.integers(0, 3, size=(10, 5)).astype(np.float64)
        y = rng.normal(size=10)
        duplicates = np.repeat(x[:3], 3, axis=0)  # exact duplicates of training rows
        dup_y = rng.normal(size=len(duplicates))

        incremental = GaussianProcessRegressor(kernel, noise=0.0).fit(x, y)
        incremental.update(duplicates, dup_y)
        full = GaussianProcessRegressor(kernel, noise=0.0).fit(
            np.concatenate([x, duplicates]), np.concatenate([y, dup_y])
        )
        query = rng.integers(0, 3, size=(12, 5)).astype(np.float64)
        mean_inc, std_inc = incremental.predict(query)
        mean_full, std_full = full.predict(query)
        np.testing.assert_allclose(mean_inc, mean_full, atol=1e-8)
        np.testing.assert_allclose(std_inc, std_full, atol=1e-8)

    def test_update_on_unfitted_gp_is_a_fit(self):
        gp = GaussianProcessRegressor(RBFKernel(), noise=1e-4)
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0.0, 1.0, 4.0])
        gp.update(x, y)
        assert gp.is_fitted
        mean, _ = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-1)

    def test_update_log_marginal_likelihood_matches_refit(self):
        rng = np.random.default_rng(4)
        x, y = _random_sequence(rng, 20, 4)
        incremental = GaussianProcessRegressor(HammingKernel(), noise=1e-3).fit(x[:10], y[:10])
        incremental.update(x[10:], y[10:])
        full = GaussianProcessRegressor(HammingKernel(), noise=1e-3).fit(x, y)
        assert incremental.log_marginal_likelihood() == pytest.approx(
            full.log_marginal_likelihood(), abs=1e-8
        )

    def test_update_validation(self):
        gp = GaussianProcessRegressor(RBFKernel(), noise=1e-4).fit(
            np.zeros((3, 2)), np.arange(3.0)
        )
        with pytest.raises(ValueError):
            gp.update(np.zeros((2, 2)), np.zeros(3))  # count mismatch
        with pytest.raises(ValueError):
            gp.update(np.zeros((2, 5)), np.zeros(2))  # feature mismatch
        # empty update is a no-op
        gp.update(np.zeros((0, 2)), np.zeros(0))
        assert len(gp._x_train) == 3

    def test_many_small_updates_grow_through_buffer_reallocation(self):
        """Repeated rank-1 updates cross the capacity boundary and stay exact."""
        rng = np.random.default_rng(5)
        x, y = _random_sequence(rng, 120, 6)
        incremental = GaussianProcessRegressor(Matern52Kernel(), noise=1e-3).fit(x[:2], y[:2])
        for i in range(2, 120):
            incremental.update(x[i : i + 1], y[i : i + 1])
        full = GaussianProcessRegressor(Matern52Kernel(), noise=1e-3).fit(x, y)
        query = rng.integers(0, 3, size=(10, 6)).astype(np.float64)
        mean_inc, std_inc = incremental.predict(query)
        mean_full, std_full = full.predict(query)
        np.testing.assert_allclose(mean_inc, mean_full, atol=1e-8)
        np.testing.assert_allclose(std_inc, std_full, atol=1e-8)


class TestFantasizedPosterior:
    def test_matches_refit_with_lies(self):
        """Conditioning on lies equals refitting with the lies appended.

        ``normalize_y=False`` makes the comparison exact: the fantasy posterior
        deliberately keeps the base GP's target standardisation, while a refit
        recomputes it with the lies included.
        """
        rng = np.random.default_rng(6)
        x, y = _random_sequence(rng, 30, 6)
        pool = rng.integers(0, 3, size=(12, 6)).astype(np.float64)
        gp = GaussianProcessRegressor(HammingKernel(), noise=1e-3, normalize_y=False).fit(x, y)

        fantasy = gp.fantasize(pool)
        lie_value = float(y.min())
        lies = []
        for _ in range(3):
            encoding = fantasy.remove(0)
            fantasy.condition(encoding, lie_value)
            lies.append(encoding)

        reference = GaussianProcessRegressor(HammingKernel(), noise=1e-3, normalize_y=False).fit(
            np.concatenate([x, np.array(lies)]), np.concatenate([y, [lie_value] * 3])
        )
        mean_fantasy, std_fantasy = fantasy.predict()
        mean_ref, std_ref = reference.predict(pool[3:])
        np.testing.assert_allclose(mean_fantasy, mean_ref, atol=1e-8)
        np.testing.assert_allclose(std_fantasy, std_ref, atol=1e-8)

    def test_initial_prediction_matches_gp_predict(self):
        rng = np.random.default_rng(7)
        x, y = _random_sequence(rng, 15, 5)
        pool = rng.integers(0, 3, size=(9, 5)).astype(np.float64)
        gp = GaussianProcessRegressor(HammingKernel(), noise=1e-3).fit(x, y)
        fantasy = gp.fantasize(pool)
        mean_f, std_f = fantasy.predict()
        mean_g, std_g = gp.predict(pool)
        np.testing.assert_allclose(mean_f, mean_g, atol=1e-10)
        np.testing.assert_allclose(std_f, std_g, atol=1e-10)

    def test_base_gp_not_mutated(self):
        rng = np.random.default_rng(8)
        x, y = _random_sequence(rng, 10, 4)
        gp = GaussianProcessRegressor(HammingKernel(), noise=1e-3).fit(x, y)
        before = gp._cholesky.copy()
        fantasy = gp.fantasize(rng.integers(0, 3, size=(5, 4)).astype(np.float64))
        fantasy.condition(fantasy.remove(0), 0.0)
        np.testing.assert_array_equal(gp._cholesky, before)
        assert len(gp._x_train) == 10
        assert fantasy.num_fantasies == 1

    def test_fantasize_requires_fitted_gp(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().fantasize(np.zeros((2, 3)))

    def test_isinstance_export(self):
        rng = np.random.default_rng(9)
        x, y = _random_sequence(rng, 6, 3)
        gp = GaussianProcessRegressor(HammingKernel(), noise=1e-3).fit(x, y)
        assert isinstance(gp.fantasize(x), FantasizedPosterior)


class _CountingObjective(Objective):
    def __init__(self):
        self.calls = 0

    def __call__(self, spec):
        self.calls += 1
        encoding = spec.encode()
        return EvaluationResult(
            spec=spec,
            objective_value=float(np.sin(encoding).sum()),
            accuracy=0.5,
        )


class TestIncrementalOptimizerEngine:
    def _space(self):
        return SearchSpace([BlockSearchInfo(depth=4, name="b0"), BlockSearchInfo(depth=4, name="b1")])

    @pytest.mark.parametrize("batch_size", [1, 3])
    def test_incremental_engine_runs_and_respects_budget(self, batch_size):
        objective = _CountingObjective()
        optimizer = BayesianOptimizer(
            self._space(),
            objective,
            initial_points=4,
            batch_size=batch_size,
            candidate_pool_size=16,
            incremental=True,
            rng=0,
        )
        history = optimizer.optimize(3)
        assert len(history) == 4 + 3 * batch_size
        assert objective.calls == len(history)
        # no architecture evaluated twice
        assert len(history.evaluated_keys()) == len(history)

    def test_incremental_and_legacy_find_comparable_optima(self):
        """Both engines search the same space with the same budget; neither
        should be catastrophically worse (they share every component except
        the linear-algebra path)."""
        results = {}
        for incremental in (True, False):
            objective = _CountingObjective()
            optimizer = BayesianOptimizer(
                self._space(),
                objective,
                initial_points=5,
                batch_size=2,
                candidate_pool_size=24,
                incremental=incremental,
                rng=12,
            )
            history = optimizer.optimize(5)
            results[incremental] = history.best().objective_value
        assert abs(results[True] - results[False]) < 2.0

    def test_history_replacement_resets_incremental_state(self):
        """Swapping in a different (equal-length or longer) history must not
        blend the old run's observations into the surrogate or dedup keys."""
        first = BayesianOptimizer(
            self._space(), _CountingObjective(), initial_points=4, batch_size=1,
            candidate_pool_size=8, incremental=True, rng=2,
        )
        first.optimize(2)
        donor = BayesianOptimizer(
            self._space(), _CountingObjective(), initial_points=4, batch_size=1,
            candidate_pool_size=8, incremental=True, rng=99,
        )
        donor.optimize(2)

        first.history = donor.history  # same length, different records
        first.optimize(1)
        first._fit_surrogate()  # absorb the final, not-yet-modelled batch
        surrogate = first._surrogate
        assert len(surrogate._x_train) == len(first.history)
        encodings = {record.spec.encode().tobytes() for record in first.history}
        modelled = {row.tobytes() for row in surrogate._x_train.astype(np.int64)}
        assert modelled == encodings  # only the new history's points are modelled

    def test_surrogate_persists_across_iterations(self):
        optimizer = BayesianOptimizer(
            self._space(),
            _CountingObjective(),
            initial_points=3,
            batch_size=1,
            candidate_pool_size=8,
            incremental=True,
            rng=1,
        )
        optimizer.optimize(2)
        first = optimizer._surrogate
        assert first is not None
        optimizer.optimize(2)
        assert optimizer._surrogate is first  # updated in place, never rebuilt
        # the surrogate lags by the final (not yet absorbed) batch; one more
        # fit call absorbs it through the incremental path
        optimizer._fit_surrogate()
        assert optimizer._surrogate is first
        assert len(first._x_train) == len(optimizer.history)
