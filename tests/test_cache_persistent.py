"""Tests of the persistent evaluation store and its objective wrappers.

The headline guarantee: evaluations written in one run are hits in a fresh
process pointed at the same directory (exercised with a real subprocess), and
a torn trailing line from a crashed writer never poisons the store.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.cache import (
    CachedObjective,
    PersistentEvaluationStore,
    result_to_row,
    row_to_result,
    spec_key,
)
from repro.core.multi_fidelity import MultiFidelityObjective
from repro.core.objectives import EvaluationResult, Objective
from repro.core.search_space import BlockSearchInfo, SearchSpace

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def make_space():
    return SearchSpace([BlockSearchInfo(depth=4, name="block")], name="cache-test")


class CountingObjective(Objective):
    def __init__(self):
        self.calls = 0

    def __call__(self, spec):
        self.calls += 1
        return EvaluationResult(
            spec=spec,
            objective_value=float(spec.total_skips()) * 0.1,
            accuracy=1.0 - float(spec.total_skips()) * 0.1,
            firing_rate=0.25,
            extra={"num_skips": float(spec.total_skips())},
        )


class TestPersistentEvaluationStore:
    def test_directory_path_appends_filename(self, tmp_path):
        store = PersistentEvaluationStore(tmp_path / "cache")
        assert store.path.name == PersistentEvaluationStore.FILENAME
        assert store.path.parent.exists()

    def test_put_get_roundtrip_and_stats(self, tmp_path):
        store = PersistentEvaluationStore(tmp_path / "store.jsonl")
        store.put("a", {"objective_value": 0.5})
        assert store.get("a")["objective_value"] == 0.5
        assert store.get("b") is None
        assert store.hits == 1 and store.misses == 1
        assert store.hit_rate == pytest.approx(0.5)
        assert "a" in store and len(store) == 1
        assert store.stats()["entries"] == 1.0

    def test_reload_from_disk(self, tmp_path):
        path = tmp_path / "store.jsonl"
        first = PersistentEvaluationStore(path)
        first.put("k1", {"objective_value": 1.0})
        first.put("k2", {"objective_value": 2.0})
        second = PersistentEvaluationStore(path)
        assert len(second) == 2
        assert second.get("k2")["objective_value"] == 2.0

    def test_latest_duplicate_wins(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = PersistentEvaluationStore(path)
        store.put("k", {"objective_value": 1.0})
        store.put("k", {"objective_value": 3.0})
        reloaded = PersistentEvaluationStore(path)
        assert len(reloaded) == 1
        assert reloaded.get("k")["objective_value"] == 3.0

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = PersistentEvaluationStore(path)
        store.put("good", {"objective_value": 1.0})
        with open(path, "a") as handle:
            handle.write('{"key": "torn", "objective_va')  # crashed mid-write
        reloaded = PersistentEvaluationStore(path)
        assert len(reloaded) == 1
        assert reloaded.skipped_lines == 1
        assert reloaded.get("good") is not None
        # the store stays appendable after a torn line
        reloaded.put("after", {"objective_value": 2.0})
        assert PersistentEvaluationStore(path).get("after") is not None

    def test_result_row_roundtrip(self):
        space = make_space()
        spec = space.sample(rng=0)
        result = CountingObjective()(spec)
        row = result_to_row(result)
        json.dumps(row)  # must be JSON-serialisable
        rebuilt = row_to_result(row, spec)
        assert rebuilt.objective_value == pytest.approx(result.objective_value)
        assert rebuilt.accuracy == pytest.approx(result.accuracy)
        assert rebuilt.firing_rate == pytest.approx(result.firing_rate)
        assert rebuilt.extra["num_skips"] == result.extra["num_skips"]


class TestCachedObjectiveWithStore:
    def test_store_hit_avoids_reevaluation_in_same_process(self, tmp_path):
        space = make_space()
        spec = space.sample(rng=1)
        store = PersistentEvaluationStore(tmp_path)
        base = CountingObjective()
        cached = CachedObjective(base, store=store)
        first = cached(spec)
        # a second wrapper sharing the store must not re-evaluate
        other = CachedObjective(CountingObjective(), store=store)
        second = other(spec)
        assert base.calls == 1
        assert second.objective_value == pytest.approx(first.objective_value)
        assert other.hits == 1 and other.misses == 0

    def test_fresh_process_hits_the_store(self, tmp_path):
        """Write in this process, read in a brand-new interpreter."""
        space = make_space()
        spec = space.sample(rng=2)
        store = PersistentEvaluationStore(tmp_path)
        cached = CachedObjective(CountingObjective(), store=store)
        expected = cached(spec)

        script = f"""
import sys
from repro.core.cache import CachedObjective, PersistentEvaluationStore
from repro.core.search_space import BlockSearchInfo, SearchSpace

class Exploding:
    def __call__(self, spec):
        raise RuntimeError("store miss: objective should never run")

space = SearchSpace([BlockSearchInfo(depth=4, name="block")], name="cache-test")
spec = space.sample(rng=2)
store = PersistentEvaluationStore({str(tmp_path)!r})
cached = CachedObjective(Exploding(), store=store)
result = cached(spec)
print(f"HIT {{result.objective_value:.6f}}")
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, env=env
        )
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.startswith("HIT")
        value = float(completed.stdout.split()[1])
        assert value == pytest.approx(expected.objective_value, abs=1e-6)

    def test_in_memory_tier_still_works_without_store(self):
        space = make_space()
        spec = space.sample(rng=3)
        cached = CachedObjective(CountingObjective())
        cached(spec)
        cached(spec)
        assert cached.hits == 1 and cached.misses == 1


class TestMultiFidelityStore:
    def test_fidelity_qualified_keys_do_not_collide(self, tmp_path):
        space = make_space()
        spec = space.sample(rng=4)
        key_low = MultiFidelityObjective.fidelity_key(spec, 1)
        key_high = MultiFidelityObjective.fidelity_key(spec, 4)
        assert key_low != key_high
        assert key_low.startswith(spec_key(spec))

    def test_store_roundtrip_through_wrapper(self, tmp_path, single_block_template, tiny_dvs_splits):
        from repro.core.objectives import AccuracyDropObjective
        from repro.training.snn_trainer import SNNTrainingConfig

        store = PersistentEvaluationStore(tmp_path)
        base = AccuracyDropObjective(
            template=single_block_template,
            splits=tiny_dvs_splits,
            training_config=SNNTrainingConfig(epochs=1, batch_size=8, num_steps=4),
            measure_firing_rate=False,
        )
        wrapper = MultiFidelityObjective(base, store=store)
        spec = single_block_template.search_space().default_spec()
        first = wrapper.evaluate(spec, epochs=1)
        evaluations = base.num_evaluations
        second = wrapper.evaluate(spec, epochs=1)
        assert base.num_evaluations == evaluations  # answered from the store
        assert second.objective_value == pytest.approx(first.objective_value)
        assert MultiFidelityObjective.fidelity_key(spec, 1) in store


class TestAdapterWithPersistentCache:
    def test_adapter_runs_with_cache_dir(self, tmp_path, single_block_template, tiny_dvs_splits):
        """The full adaptation pipeline works with the store attached (and the
        store must not shadow the weight-sharing store used for the final
        fine-tune)."""
        from repro.core.adapter import AdaptationConfig, SNNAdapter
        from repro.training.snn_trainer import SNNTrainingConfig

        config = AdaptationConfig(
            snn_training=SNNTrainingConfig(epochs=1, batch_size=8, num_steps=4),
            candidate_finetune_epochs=1,
            final_finetune_epochs=1,
            bo_iterations=1,
            bo_initial_points=2,
            bo_candidate_pool=4,
            cache_dir=str(tmp_path),
        )
        result = SNNAdapter(single_block_template, tiny_dvs_splits, config).run()
        assert result.history.num_evaluations >= 2
        store_files = list(tmp_path.glob("*.jsonl"))
        assert len(store_files) == 1 and store_files[0].stat().st_size > 0


class TestBayesOptWithPersistentCache:
    def test_second_search_run_is_served_from_disk(self, tmp_path):
        """A repeated BO run with the same seed costs zero real evaluations."""
        from repro.core.bayes_opt import BayesianOptimizer

        space = make_space()

        def run(base):
            store = PersistentEvaluationStore(tmp_path)
            cached = CachedObjective(base, store=store)
            optimizer = BayesianOptimizer(
                space, cached, initial_points=3, batch_size=2, candidate_pool_size=8, rng=7
            )
            optimizer.optimize(2)
            return optimizer.history.best().objective_value

        first_base = CountingObjective()
        best_first = run(first_base)
        second_base = CountingObjective()
        best_second = run(second_base)
        assert first_base.calls > 0
        assert second_base.calls == 0  # every evaluation was a store hit
        assert best_second == pytest.approx(best_first)
