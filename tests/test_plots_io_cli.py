"""Tests of ASCII plotting, result serialisation and the command-line interface."""

import json

import numpy as np
import pytest

from repro.core.adjacency import ASC, BlockAdjacency
from repro.core.search_space import ArchitectureSpec
from repro.experiments import (
    Figure1Point,
    Figure1Result,
    Figure3Result,
    Table1Result,
    Table1Row,
    ascii_bar_chart,
    ascii_line_chart,
    load_result,
    plot_figure1,
    plot_figure3,
    save_result,
)
from repro.experiments.io import spec_from_dict, spec_to_dict
from repro.cli import build_parser, main


def _figure1_result():
    result = Figure1Result(connection_type="asc", dataset_name="toy")
    for n in range(4):
        result.points.append(
            Figure1Point("asc", n, ann_accuracy=0.6 + 0.02 * n, snn_accuracy=0.4 + 0.05 * n,
                         firing_rate=0.1 + 0.02 * n, macs_per_step=1000.0 + 10 * n)
        )
    return result


def _figure3_result():
    result = Figure3Result(dataset_name="toy", model_name="resnet18")
    result.bo_curve.runs = [[0.3, 0.5, 0.6], [0.35, 0.45, 0.65]]
    result.rs_curve.runs = [[0.3, 0.4, 0.45], [0.3, 0.35, 0.5]]
    return result


def _table1_result():
    table = Table1Result()
    table.rows.append(Table1Row("cifar10", "resnet18", 0.9, 0.6, 0.75, 0.12, 0.18, 0.15))
    table.rows.append(Table1Row("cifar10-dvs", "densenet121", None, 0.5, 0.62, 0.1, 0.14, 0.12))
    return table


class TestAsciiPlots:
    def test_line_chart_contains_markers_and_legend(self):
        chart = ascii_line_chart({"a": [0.1, 0.5, 0.9], "b": [0.2, 0.3, 0.4]}, width=30, height=8)
        assert "*" in chart and "o" in chart
        assert "a" in chart and "b" in chart

    def test_line_chart_flat_series(self):
        chart = ascii_line_chart({"flat": [0.5, 0.5, 0.5]}, width=20, height=5)
        assert "flat" in chart

    def test_line_chart_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_line_chart({})
        with pytest.raises(ValueError):
            ascii_line_chart({"a": []})

    def test_bar_chart_scales_to_max(self):
        chart = ascii_bar_chart(["x", "y"], {"metric": [1.0, 2.0]}, width=10)
        lines = [line for line in chart.splitlines() if "#" in line]
        assert len(lines[1].split("|")[1].strip().split(" ")[0]) >= len(lines[0].split("|")[1].strip().split(" ")[0])

    def test_bar_chart_rejects_empty_groups(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], {})

    def test_plot_figure1(self):
        text = plot_figure1(_figure1_result())
        assert "Figure 1 (d)" in text and "firing rate" in text

    def test_plot_figure3(self):
        text = plot_figure3(_figure3_result())
        assert "Our HPO" in text and "random search" in text


class TestResultIO:
    def test_spec_roundtrip(self):
        spec = ArchitectureSpec([BlockAdjacency(4).with_connection(0, 2, ASC), BlockAdjacency(3)], name="x")
        restored = spec_from_dict(spec_to_dict(spec))
        assert restored == spec

    def test_figure1_roundtrip(self, tmp_path):
        original = _figure1_result()
        path = save_result(original, tmp_path / "fig1.json")
        restored = load_result(path)
        assert restored.connection_type == original.connection_type
        assert restored.snn_accuracies() == pytest.approx(original.snn_accuracies())
        assert restored.macs() == pytest.approx(original.macs())

    def test_figure3_roundtrip(self, tmp_path):
        original = _figure3_result()
        path = save_result(original, tmp_path / "fig3.json")
        restored = load_result(path)
        np.testing.assert_allclose(restored.bo_curve.mean(), original.bo_curve.mean())
        np.testing.assert_allclose(restored.rs_curve.std(), original.rs_curve.std())

    def test_table1_roundtrip(self, tmp_path):
        original = _table1_result()
        path = save_result(original, tmp_path / "table1.json")
        restored = load_result(path)
        assert len(restored.rows) == 2
        assert restored.rows[1].ann_accuracy is None
        assert restored.average_improvement() == pytest.approx(original.average_improvement())

    def test_saved_file_is_plain_json(self, tmp_path):
        path = save_result(_table1_result(), tmp_path / "t.json")
        payload = json.loads(path.read_text())
        assert payload["kind"] == "Table1Result"

    def test_unsupported_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_result(object(), tmp_path / "x.json")

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "Mystery", "data": {}}))
        with pytest.raises(ValueError):
            load_result(path)


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["figure1", "--type", "dsc", "--scale", "smoke"])
        assert args.command == "figure1" and args.connection_type == "dsc"
        args = parser.parse_args(["table1", "--datasets", "cifar10-dvs", "--models", "resnet18"])
        assert args.datasets == ["cifar10-dvs"]
        args = parser.parse_args(["figure3", "--runs", "2"])
        assert args.runs == 2
        args = parser.parse_args(["adapt", "--model", "mobilenetv2"])
        assert args.model == "mobilenetv2"

    def test_info_command(self, capsys):
        assert main(["info"]) == 0
        captured = capsys.readouterr().out
        assert "cifar10-dvs" in captured and "resnet18" in captured

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_figure1_command_smoke(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        output = tmp_path / "fig1.json"
        code = main(["figure1", "--type", "asc", "--scale", "smoke", "--plot", "--output", str(output)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "Figure 1 (d)" in captured
        assert output.exists()
        restored = load_result(output)
        assert len(restored.points) == 4
