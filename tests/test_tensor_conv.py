"""Tests of im2col convolution and pooling: shapes, reference values, gradients."""

import numpy as np
import pytest

from repro.tensor import Tensor, avg_pool2d, conv2d, global_avg_pool2d, gradcheck, max_pool2d
from repro.tensor.conv import conv_output_shape


def naive_conv2d(x, w, b=None, stride=1, padding=0, groups=1):
    """Straightforward reference convolution used to validate the fast path."""
    n, c_in, h, width = x.shape
    c_out, c_in_g, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - kh) // stride + 1
    out_w = (x.shape[3] - kw) // stride + 1
    out = np.zeros((n, c_out, out_h, out_w))
    c_out_g = c_out // groups
    for sample in range(n):
        for oc in range(c_out):
            g = oc // c_out_g
            for i in range(out_h):
                for j in range(out_w):
                    patch = x[
                        sample,
                        g * c_in_g : (g + 1) * c_in_g,
                        i * stride : i * stride + kh,
                        j * stride : j * stride + kw,
                    ]
                    out[sample, oc, i, j] = (patch * w[oc]).sum()
            if b is not None:
                out[sample, oc] += b[oc]
    return out


class TestConvOutputShape:
    def test_basic(self):
        assert conv_output_shape(8, 8, 3, 1, 1) == (8, 8)
        assert conv_output_shape(8, 8, 3, 2, 1) == (4, 4)
        assert conv_output_shape(7, 9, (3, 5), 1, 0) == (5, 5)

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            conv_output_shape(2, 2, 5, 1, 0)


class TestConv2dForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=(4,))
        fast = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        ref = naive_conv2d(x, w, b, stride=stride, padding=padding)
        np.testing.assert_allclose(fast.data, ref, atol=1e-10)

    def test_grouped_matches_naive(self, rng):
        x = rng.normal(size=(2, 4, 5, 5))
        w = rng.normal(size=(8, 2, 3, 3))
        fast = conv2d(Tensor(x), Tensor(w), None, padding=1, groups=2)
        ref = naive_conv2d(x, w, None, padding=1, groups=2)
        np.testing.assert_allclose(fast.data, ref, atol=1e-10)

    def test_depthwise_matches_naive(self, rng):
        x = rng.normal(size=(1, 6, 5, 5))
        w = rng.normal(size=(6, 1, 3, 3))
        fast = conv2d(Tensor(x), Tensor(w), None, padding=1, groups=6)
        ref = naive_conv2d(x, w, None, padding=1, groups=6)
        np.testing.assert_allclose(fast.data, ref, atol=1e-10)

    def test_1x1_conv(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        w = rng.normal(size=(5, 3, 1, 1))
        fast = conv2d(Tensor(x), Tensor(w))
        ref = naive_conv2d(x, w)
        np.testing.assert_allclose(fast.data, ref, atol=1e-10)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 4, 4)))
        w = Tensor(rng.normal(size=(2, 4, 3, 3)))
        with pytest.raises(ValueError):
            conv2d(x, w)

    def test_bad_groups_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 4, 4)))
        w = Tensor(rng.normal(size=(2, 1, 3, 3)))
        with pytest.raises(ValueError):
            conv2d(x, w, groups=2)


class TestConv2dBackward:
    def test_gradcheck_with_bias(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)) * 0.4, requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        ok, err = gradcheck(lambda x, w, b: conv2d(x, w, b, stride=1, padding=1), [x, w, b])
        assert ok, err

    def test_gradcheck_strided(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)) * 0.4, requires_grad=True)
        ok, err = gradcheck(lambda x, w: conv2d(x, w, None, stride=2, padding=1), [x, w])
        assert ok, err

    def test_gradcheck_depthwise(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 4, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 1, 3, 3)) * 0.4, requires_grad=True)
        ok, err = gradcheck(lambda x, w: conv2d(x, w, None, padding=1, groups=3), [x, w])
        assert ok, err

    def test_no_grad_skips_graph(self, rng):
        from repro.tensor import no_grad

        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)), requires_grad=True)
        with no_grad():
            out = conv2d(x, w, padding=1)
        assert not out.requires_grad


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, [[[[5.0, 7.0], [13.0, 15.0]]]])

    def test_max_pool_grad_routes_to_max(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((1, 1, 4, 4))
        expected[0, 0, 1, 1] = expected[0, 0, 1, 3] = expected[0, 0, 3, 1] = expected[0, 0, 3, 3] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_max_pool_with_stride_and_padding(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 5, 5)), requires_grad=True)
        out = max_pool2d(x, 3, stride=2, padding=1)
        assert out.shape == (2, 3, 3, 3)

    def test_avg_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, [[[[2.5, 4.5], [10.5, 12.5]]]])

    def test_avg_pool_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 4, 4)), requires_grad=True)
        ok, err = gradcheck(lambda x: avg_pool2d(x, 2), [x])
        assert ok, err

    def test_max_pool_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        ok, err = gradcheck(lambda x: max_pool2d(x, 2), [x])
        assert ok, err

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(3, 5, 4, 4))
        out = global_avg_pool2d(Tensor(x))
        assert out.shape == (3, 5)
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)))
