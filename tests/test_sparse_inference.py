"""Differential tests of the event-driven sparse inference mode (PR 8).

The sparse path's contract is **bit-equality with the dense fast path**: under
:func:`repro.tensor.sparse.sparse_inference` every conv/matmul either runs the
event-driven gather/scatter kernel (certified shapes, binary inputs) or falls
back to the dense kernel — so the observable output of any evaluation must be
bit-identical with the mode on or off.  These tests drive both paths over

* the raw kernels (every geometry class: stride, padding, empty event lists),
* the per-shape GEMM certification probe (self-validating against the real
  GEMM on random shapes),
* the dispatch heuristic (crossover threshold, counters, fallback reasons),
* whole temporal evaluations, property-based over architectures x neuron
  models x firing-rate regimes straddling the crossover,
* the latency objective, which must work in both modes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.synthetic_dvs import DVSEventConfig, make_synthetic_cifar10_dvs
from repro.models import get_template
from repro.nn import Conv2d, Flatten, Linear, Sequential
from repro.snn import ALIFNeuron, IFNeuron, LeakyIntegrator, LIFNeuron, SynapticNeuron, TemporalRunner
from repro.snn.temporal import run_temporal
from repro.tensor import (
    SPARSE_CROSSOVER,
    Tensor,
    no_grad,
    ops,
    reset_sparse_counters,
    sparse_counters,
    sparse_crossover,
    sparse_enabled,
    sparse_inference,
)
from repro.tensor.conv import conv2d
from repro.tensor.sparse import (
    annotate_frame,
    gemm_accumulates_sequentially,
    sparse_conv2d,
    sparse_matmul,
    spike_events,
)
from repro.training.evaluation import measure_latency_ms

# keep hypothesis fast and deterministic for CI (same policy as test_property_based)
FAST = settings(max_examples=20, deadline=None)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(autouse=True)
def _clean_counters():
    reset_sparse_counters()
    yield
    reset_sparse_counters()


def _binary(rng, shape, rate):
    return (rng.random(shape) < rate).astype(np.float64)


def _with_events(data):
    t = Tensor(data)
    t._events = np.flatnonzero(data)
    return t


# ---------------------------------------------------------------------------
# kernel-level bit-equality
# ---------------------------------------------------------------------------

class TestSparseConvKernel:
    GEOMETRIES = [
        # (c_in, c_out, kernel, stride, padding, bias)
        (16, 16, 3, 1, 1, True),
        (8, 12, 3, 1, 0, False),
        (4, 16, 5, 1, 2, True),
        (16, 16, 3, 2, 1, True),
        (8, 8, 2, 2, 0, False),
        (4, 8, 3, 2, 2, True),
    ]

    @pytest.mark.parametrize("c_in,c_out,k,stride,padding,bias", GEOMETRIES)
    @pytest.mark.parametrize("rate", [0.0, 0.01, 0.05, 0.3])
    def test_bit_identical_to_dense_fast_path(self, rng, c_in, c_out, k, stride, padding, bias, rate):
        x = _binary(rng, (4, c_in, 16, 16), rate)
        w = Tensor(rng.standard_normal((c_out, c_in, k, k)))
        b = Tensor(rng.standard_normal(c_out)) if bias else None
        with no_grad():
            dense = conv2d(Tensor(x), w, b, stride=stride, padding=padding).data.copy()
            with sparse_inference(crossover=1.0):  # force eligibility at any rate
                sparse = conv2d(_with_events(x), w, b, stride=stride, padding=padding).data
        counters = sparse_counters()
        assert counters["sparse_steps"] + counters["dense_steps"] == 1
        assert np.array_equal(dense, sparse)

    def test_empty_event_list_gives_bias_only_output(self, rng):
        x = np.zeros((2, 8, 16, 16))
        w = rng.standard_normal((8, 8, 3, 3))
        b = rng.standard_normal(8)
        out = sparse_conv2d(x.shape, w, b, np.flatnonzero(x), 1, 1, 1, 1, 16, 16)
        assert np.array_equal(out, np.broadcast_to(b.reshape(1, 8, 1, 1), out.shape))

    def test_kernel_never_reads_the_input_array(self, rng):
        """The kernel reconstructs everything from the event list — feeding it
        a poisoned input array proves the dense data is never touched."""
        x = _binary(rng, (2, 8, 16, 16), 0.02)
        w = rng.standard_normal((8, 8, 3, 3))
        events = np.flatnonzero(x)
        expected = sparse_conv2d(x.shape, w, None, events, 1, 1, 1, 1, 16, 16)
        poisoned = sparse_conv2d(
            (np.nan * np.ones_like(x)).shape, w, None, events, 1, 1, 1, 1, 16, 16
        )
        assert np.array_equal(expected, poisoned)


class TestSparseMatmulKernel:
    @pytest.mark.parametrize("rate", [0.0, 0.02, 0.2])
    def test_bit_identical_when_certified(self, rng, rate):
        a = _binary(rng, (16, 128), rate)
        b = rng.standard_normal((128, 128))
        assert gemm_accumulates_sequentially(16, 128, 128)
        assert np.array_equal(sparse_matmul(a.shape, b, np.flatnonzero(a)), a @ b)

    def test_dispatch_output_always_matches_dense(self, rng):
        """Through ops.matmul the result equals plain GEMM whether the sparse
        kernel fired or the dispatch fell back (non-certified shape)."""
        for n, f, m in [(16, 128, 128), (8, 512, 10), (32, 64, 10)]:
            a = _binary(rng, (n, f), 0.02)
            b = rng.standard_normal((f, m))
            with no_grad(), sparse_inference():
                out = ops.matmul(_with_events(a), Tensor(b)).data
            assert np.array_equal(out, a @ b), (n, f, m)


class TestGemmProbe:
    def test_probe_verdicts_are_self_consistent(self, rng):
        """Wherever the probe certifies a shape, the scatter kernel must agree
        with the platform GEMM bitwise on random binary data — the probe is
        the load-bearing assumption of the whole sparse mode."""
        shapes = [(16, 72, 2048), (16, 128, 128), (8, 512, 10), (32, 4096, 10), (2, 9, 64)]
        for _ in range(10):
            shapes.append(tuple(int(v) for v in rng.integers(1, 200, size=3)))
        for rows, k, cols in shapes:
            if not gemm_accumulates_sequentially(rows, k, cols):
                continue
            a = _binary(rng, (rows, k), 0.3)
            b = rng.standard_normal((k, cols))
            assert np.array_equal(sparse_matmul(a.shape, b, np.flatnonzero(a)), a @ b), (rows, k, cols)

    def test_probe_is_cached(self):
        first = gemm_accumulates_sequentially(16, 72, 2048)
        assert gemm_accumulates_sequentially(16, 72, 2048) is first


# ---------------------------------------------------------------------------
# dispatch heuristic: crossover threshold, producers, fallbacks
# ---------------------------------------------------------------------------

class TestCrossoverDispatch:
    def test_mode_is_off_by_default(self, rng):
        assert not sparse_enabled()
        spikes = _binary(rng, (4, 8, 16, 16), 0.01).astype(bool)
        assert spike_events(spikes, np.float64) is None
        with no_grad():
            conv2d(Tensor(_binary(rng, (2, 8, 16, 16), 0.01)), Tensor(rng.standard_normal((8, 8, 3, 3))))
        assert sparse_counters() == {"sparse_steps": 0, "dense_steps": 0}

    def test_context_manager_restores_state(self):
        with sparse_inference(crossover=0.1):
            assert sparse_enabled()
            assert sparse_crossover() == 0.1
            with sparse_inference(crossover=0.5):
                assert sparse_crossover() == 0.5
            assert sparse_crossover() == 0.1
        assert not sparse_enabled()
        assert sparse_crossover() == SPARSE_CROSSOVER
        with pytest.raises(ValueError):
            with sparse_inference(crossover=1.5):
                pass

    def test_spike_events_straddle_the_crossover(self):
        """Exactly at the threshold is sparse; one spike above is dense."""
        size = 1000
        crossover = 0.05
        at = np.zeros(size, dtype=bool)
        at[: int(crossover * size)] = True
        above = np.zeros(size, dtype=bool)
        above[: int(crossover * size) + 1] = True
        with sparse_inference(crossover=crossover):
            events = spike_events(at, np.float64)
            assert events is not None and np.array_equal(events, np.flatnonzero(at))
            assert spike_events(above, np.float64) is None
            assert spike_events(at, np.float32) is None  # float64-only path

    def test_conv_dispatch_chooses_path_by_rate(self, rng):
        w = Tensor(rng.standard_normal((8, 8, 3, 3)))
        low = _binary(rng, (2, 8, 16, 16), 0.01)
        high = _binary(rng, (2, 8, 16, 16), 0.5)
        with no_grad(), sparse_inference():
            conv2d(_with_events(low), w, padding=1)
            assert sparse_counters()["sparse_steps"] == 1
            conv2d(Tensor(high), w, padding=1)  # no events attached -> dense
        assert sparse_counters() == {"sparse_steps": 1, "dense_steps": 1}

    def test_fallbacks_are_dense_and_tallied(self, rng):
        x = _binary(rng, (2, 8, 16, 16), 0.01)
        with no_grad(), sparse_inference():
            # groups > 1 is unsupported by the sparse kernel
            wg = Tensor(rng.standard_normal((8, 4, 3, 3)))
            dense_g = conv2d(Tensor(x), wg, padding=1, groups=2).data.copy()
            reset_sparse_counters()
            sparse_g = conv2d(_with_events(x), wg, padding=1, groups=2).data
            assert sparse_counters() == {"sparse_steps": 0, "dense_steps": 1}
            assert np.array_equal(dense_g, sparse_g)
            # float32 operands are dense-only (float32 GEMMs are never
            # certified; the tolerance contract covers that substrate)
            x32 = x.astype(np.float32)
            w32 = Tensor(rng.standard_normal((8, 8, 3, 3)).astype(np.float32))
            reset_sparse_counters()
            conv2d(_with_events(x32), w32, padding=1)
            assert sparse_counters() == {"sparse_steps": 0, "dense_steps": 1}

    def test_annotate_frame_requires_binary_values(self):
        with sparse_inference():
            binary = Tensor(np.zeros((2, 2, 16, 16)))
            binary.data[0, 0, 0, 0] = 1.0
            annotate_frame(binary)
            assert binary._events is not None
            analog = Tensor(np.zeros((2, 2, 16, 16)))
            analog.data[0, 0, 0, 0] = 0.5  # sparse but not binary
            annotate_frame(analog)
            assert analog._events is None

    def test_reshape_propagates_events_on_the_fast_path(self, rng):
        a = _binary(rng, (2, 8, 4, 4), 0.05)
        t = _with_events(a)
        with no_grad():
            flat = ops.reshape(t, (2, 128))
        assert flat._events is t._events
        grad_in = Tensor(a, requires_grad=True)
        grad_in._events = np.flatnonzero(a)
        tracked = ops.reshape(grad_in, (2, 128))
        assert tracked._events is None  # graph path never carries events

    def test_synthetic_dvs_workload_takes_the_sparse_path(self):
        """Acceptance: the dispatch heuristic actually fires on low-activity
        event data from data/synthetic_dvs.py, not just hand-built tensors."""
        splits = make_synthetic_cifar10_dvs(
            DVSEventConfig(
                num_samples=12,
                image_size=16,
                num_steps=6,
                contrast_threshold=0.4,
                movement_radius=0.8,
                noise_events_per_step=1,
            )
        )
        batch, _ = splits.train[np.arange(4)]
        rates = batch.mean(axis=(0, 2, 3, 4))
        assert 0.0 < rates.max() <= SPARSE_CROSSOVER  # genuinely low-activity frames
        model = Sequential(
            Conv2d(2, 8, kernel_size=3, padding=1),
            LIFNeuron(beta=0.9, threshold=1.0),
            Flatten(),
            Linear(8 * 16 * 16, 10),
            LeakyIntegrator(0.9),
        )
        model.eval()
        with no_grad():
            dense = run_temporal(model, batch, num_steps=6).data.copy()
            with sparse_inference():
                sparse = run_temporal(model, batch, num_steps=6).data
        counters = sparse_counters()
        assert counters["sparse_steps"] > 0  # encoder frames reached the conv sparsely
        assert np.array_equal(dense, sparse)


# ---------------------------------------------------------------------------
# property-based differential suite: architectures x neurons x rates
# ---------------------------------------------------------------------------

NEURONS = {
    "lif": lambda: LIFNeuron(beta=0.9, threshold=0.8),
    "if": lambda: IFNeuron(threshold=0.8),
    "alif": lambda: ALIFNeuron(beta=0.85, adaptation=0.3, threshold=0.8),
    "synaptic": lambda: SynapticNeuron(alpha=0.7, beta=0.9, threshold=0.8),
}


def _conv_chain(kind, c_in=2, channels=8, image=16, num_classes=4):
    """Conv->neuron->conv->neuron->linear chain whose spikes feed convs
    directly (no BN in between), so internal event lists stay consumable."""
    return Sequential(
        Conv2d(c_in, channels, kernel_size=3, padding=1),
        NEURONS[kind](),
        Conv2d(channels, channels, kernel_size=3, padding=1),
        NEURONS[kind](),
        Flatten(),
        Linear(channels * image * image, num_classes),
        LeakyIntegrator(0.9),
    )


class TestPropertyDifferential:
    @FAST
    @given(
        kind=st.sampled_from(sorted(NEURONS)),
        rate=st.one_of(
            st.floats(0.001, SPARSE_CROSSOVER),        # below crossover: sparse fires
            st.floats(SPARSE_CROSSOVER, 0.3),          # above: dense fallback
        ),
        steps=st.integers(2, 5),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_conv_chain_sparse_equals_dense_bitwise(self, kind, rate, steps, seed):
        rng = np.random.default_rng(seed)
        batch = _binary(rng, (2, steps, 2, 16, 16), rate)
        from repro.tensor.random import seed_everything

        seed_everything(seed % 1000)
        model = _conv_chain(kind)
        model.eval()
        reset_sparse_counters()
        with no_grad():
            dense = run_temporal(model, batch, num_steps=steps).data.copy()
            with sparse_inference():
                sparse = run_temporal(model, batch, num_steps=steps).data.copy()
        assert np.array_equal(dense, sparse)

    @FAST
    @given(
        name=st.sampled_from(["single_block", "resnet18"]),
        rate=st.floats(0.001, 0.1),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_templates_sparse_equals_dense_bitwise(self, name, rate, seed):
        rng = np.random.default_rng(seed)
        template = get_template(name, input_channels=2, num_classes=4)
        model = template.build(spiking=True, rng=0)
        model.eval()
        batch = _binary(rng, (2, 3, 2, 16, 16), rate)
        runner = TemporalRunner(model, num_steps=3)
        with no_grad():
            dense = runner(batch).data.copy()
            with sparse_inference():
                sparse = runner(batch).data.copy()
        assert np.array_equal(dense, sparse)

    @FAST
    @given(rate=st.floats(0.001, 0.03), seed=st.integers(0, 10_000))
    def test_sparse_mode_fires_below_crossover(self, rate, seed):
        """Below the crossover the heuristic must actually choose the sparse
        kernel (not just fall back everywhere and pass trivially)."""
        rng = np.random.default_rng(seed)
        batch = _binary(rng, (2, 3, 2, 16, 16), rate)
        model = _conv_chain("lif")
        model.eval()
        reset_sparse_counters()
        with no_grad(), sparse_inference():
            run_temporal(model, batch, num_steps=3)
        assert sparse_counters()["sparse_steps"] > 0


# ---------------------------------------------------------------------------
# latency objective works in both modes
# ---------------------------------------------------------------------------

class TestLatencyInSparseMode:
    def test_measure_latency_ms_inside_sparse_mode(self, rng):
        model = _conv_chain("lif")
        runner = TemporalRunner(model, num_steps=3)
        batch = _binary(rng, (2, 3, 2, 16, 16), 0.01)
        dense_ms = measure_latency_ms(runner, batch, runs=2, warmup=1)
        reset_sparse_counters()
        with sparse_inference():
            sparse_ms = measure_latency_ms(runner, batch, runs=2, warmup=1)
        assert dense_ms > 0.0 and sparse_ms > 0.0
        assert sparse_counters()["sparse_steps"] > 0  # timed the sparse path
        assert model.training  # mode restored in both cases
