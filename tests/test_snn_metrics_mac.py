"""Tests of firing-rate monitoring, MAC counting, energy estimation and conversion."""

import numpy as np
import pytest

from repro.nn import Conv2d, GlobalAvgPool2d, Linear, ReLU, Sequential
from repro.snn import (
    FiringRateMonitor,
    LeakyIntegrator,
    LIFNeuron,
    MACCounter,
    TemporalRunner,
    average_firing_rate,
    convert_relu_to_lif,
    estimate_block_macs,
    estimate_energy,
    estimate_model_macs,
    spiking_copy,
)
from repro.snn.mac import conv2d_macs, linear_macs
from repro.core.adjacency import ASC, DSC, BlockAdjacency
from repro.tensor import Tensor


def _snn(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(1, 4, 3, padding=1, rng=rng),
        LIFNeuron(beta=0.9),
        Conv2d(4, 4, 3, padding=1, rng=rng),
        LIFNeuron(beta=0.9),
        GlobalAvgPool2d(),
        Linear(4, 3, rng=rng),
        LeakyIntegrator(),
    )


class TestFiringRateMonitor:
    def test_records_all_spiking_layers(self):
        model = _snn()
        monitor = FiringRateMonitor(model)
        runner = TemporalRunner(model, num_steps=5)
        with monitor:
            runner(np.random.default_rng(0).random((3, 1, 6, 6)))
        stats = monitor.statistics()
        assert len(stats.per_layer_rate) == 2
        assert stats.num_steps == 5

    def test_rates_bounded(self):
        model = _snn()
        monitor = FiringRateMonitor(model)
        with monitor:
            TemporalRunner(model, num_steps=4)(np.random.default_rng(0).random((2, 1, 5, 5)))
        stats = monitor.statistics()
        assert 0.0 <= stats.average_firing_rate <= 1.0
        assert 0.0 <= stats.average_firing_rate_percent <= 100.0

    def test_recording_disabled_after_exit(self):
        model = _snn()
        monitor = FiringRateMonitor(model)
        with monitor:
            pass
        neurons = [m for m in model.modules() if isinstance(m, LIFNeuron)]
        assert all(not n.record_spikes for n in neurons)

    def test_stronger_input_raises_firing_rate(self):
        model = _snn()
        runner = TemporalRunner(model, num_steps=5)
        rates = {}
        for scale in (0.1, 3.0):
            monitor = FiringRateMonitor(model)
            with monitor:
                runner(np.random.default_rng(0).random((2, 1, 5, 5)) * scale)
            rates[scale] = monitor.statistics().average_firing_rate
        assert rates[3.0] >= rates[0.1]

    def test_statistics_summary_text(self):
        model = _snn()
        monitor = FiringRateMonitor(model)
        with monitor:
            TemporalRunner(model, num_steps=2)(np.random.default_rng(0).random((1, 1, 5, 5)))
        text = monitor.statistics().summary()
        assert "average firing rate" in text

    def test_average_firing_rate_helper(self):
        model = _snn()
        monitor = FiringRateMonitor(model)
        with monitor:
            TemporalRunner(model, num_steps=3)(np.random.default_rng(0).random((1, 1, 5, 5)))
            rate = average_firing_rate(model)
        assert 0.0 <= rate <= 1.0

    def test_no_spiking_layers_gives_zero(self):
        ann = Sequential(Linear(3, 2))
        monitor = FiringRateMonitor(ann)
        with monitor:
            ann(Tensor(np.zeros((1, 3))))
        assert monitor.statistics().average_firing_rate == 0.0

    def test_clear_resets_records(self):
        model = _snn()
        monitor = FiringRateMonitor(model)
        with monitor:
            TemporalRunner(model, num_steps=2)(np.random.default_rng(0).random((1, 1, 5, 5)))
            monitor.clear()
        assert monitor.statistics().total_spikes == 0.0


class TestMACCounting:
    def test_conv_macs_formula(self):
        assert conv2d_macs(3, 8, (3, 3), 4, 4, groups=1) == 4 * 4 * 8 * 3 * 9
        assert conv2d_macs(8, 8, (3, 3), 4, 4, groups=8) == 4 * 4 * 8 * 1 * 9

    def test_linear_macs_formula(self):
        assert linear_macs(128, 10) == 1280

    def test_counter_traces_model(self):
        model = _snn()
        report = MACCounter(model).count(np.zeros((1, 1, 6, 6)))
        # conv1: 36*4*1*9 ; conv2: 36*4*4*9 ; linear: 12
        assert report.total == 36 * 4 * 9 + 36 * 16 * 9 + 12
        assert len(report.per_layer) == 3

    def test_counter_restores_forward(self):
        model = _snn()
        MACCounter(model).count(np.zeros((1, 1, 6, 6)))
        # forward still works normally afterwards (no stale monkeypatch)
        out = TemporalRunner(model, num_steps=2)(np.zeros((1, 1, 6, 6)))
        assert out.shape == (1, 3)

    def test_estimate_model_macs_helper(self):
        model = _snn()
        assert estimate_model_macs(model, np.zeros((1, 1, 6, 6))) > 0

    def test_report_summary(self):
        model = _snn()
        report = MACCounter(model).count(np.zeros((1, 1, 6, 6)))
        assert "total MACs" in report.summary()

    def test_dsc_increases_macs_asc_does_not(self):
        """The paper's central energy argument: concatenation adds MACs, addition does not."""
        depth, channels, size = 4, 8, 6
        no_skip = estimate_block_macs(BlockAdjacency(depth).matrix, channels, size, size)
        asc = estimate_block_macs(
            BlockAdjacency.with_final_layer_skips(depth, 3, ASC).matrix, channels, size, size
        )
        dsc = estimate_block_macs(
            BlockAdjacency.with_final_layer_skips(depth, 3, DSC).matrix, channels, size, size
        )
        assert asc == no_skip
        assert dsc > no_skip

    def test_estimate_block_macs_scales_with_depth(self):
        shallow = estimate_block_macs(BlockAdjacency(2).matrix, 4, 8, 8)
        deep = estimate_block_macs(BlockAdjacency(4).matrix, 4, 8, 8)
        assert deep == 2 * shallow


class TestEnergyEstimate:
    def test_lower_firing_rate_means_lower_energy(self):
        low = estimate_energy(1e6, firing_rate=0.1, num_steps=10)
        high = estimate_energy(1e6, firing_rate=0.5, num_steps=10)
        assert low.snn_energy_nj < high.snn_energy_nj
        assert low.ann_energy_nj == high.ann_energy_nj

    def test_sparse_snn_beats_ann(self):
        estimate = estimate_energy(1e6, firing_rate=0.1, num_steps=10)
        assert estimate.snn_to_ann_ratio < 1.0

    def test_dense_snn_loses_to_ann(self):
        estimate = estimate_energy(1e6, firing_rate=0.9, num_steps=25)
        assert estimate.snn_to_ann_ratio > 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            estimate_energy(1e6, firing_rate=1.5, num_steps=10)
        with pytest.raises(ValueError):
            estimate_energy(1e6, firing_rate=0.5, num_steps=0)


class TestConversion:
    def test_convert_replaces_all_relus(self):
        rng = np.random.default_rng(0)
        ann = Sequential(Conv2d(1, 2, 3, padding=1, rng=rng), ReLU(), GlobalAvgPool2d(), Linear(2, 2, rng=rng))
        replaced = convert_relu_to_lif(ann)
        assert replaced == 1
        assert sum(1 for m in ann.modules() if isinstance(m, LIFNeuron)) == 1
        assert not any(isinstance(m, ReLU) for m in ann.modules())

    def test_converted_model_forward_works(self):
        rng = np.random.default_rng(0)
        ann = Sequential(Conv2d(1, 2, 3, padding=1, rng=rng), ReLU(), GlobalAvgPool2d(), Linear(2, 2, rng=rng))
        convert_relu_to_lif(ann)
        out = TemporalRunner(ann, num_steps=3)(np.random.default_rng(1).random((2, 1, 4, 4)))
        assert out.shape == (2, 2)

    def test_spiking_copy_preserves_original(self):
        rng = np.random.default_rng(0)
        ann = Sequential(Linear(3, 3, rng=rng), ReLU(), Linear(3, 2, rng=rng))
        snn = spiking_copy(ann)
        assert any(isinstance(m, ReLU) for m in ann.modules())
        assert any(isinstance(m, LIFNeuron) for m in snn.modules())

    def test_spiking_copy_copies_weights(self):
        rng = np.random.default_rng(0)
        ann = Sequential(Linear(3, 3, rng=rng), ReLU())
        snn = spiking_copy(ann)
        np.testing.assert_allclose(ann[0].weight.data, snn[0].weight.data)

    def test_conversion_with_custom_neuron_params(self):
        rng = np.random.default_rng(0)
        ann = Sequential(Linear(3, 3, rng=rng), ReLU())
        snn = spiking_copy(ann, beta=0.5, threshold=2.0, reset_mechanism="zero")
        neuron = [m for m in snn.modules() if isinstance(m, LIFNeuron)][0]
        assert neuron.beta == 0.5 and neuron.threshold == 2.0 and neuron.reset_mechanism == "zero"
