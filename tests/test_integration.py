"""End-to-end integration tests at smoke scale.

These exercise the full pipelines (training objectives, the SNN adapter, the
experiment harnesses) on tiny synthetic data.  They assert structural
correctness — the right quantities are produced, weight sharing kicks in, the
search only visits admissible architectures — rather than accuracy levels,
which are meaningless at this scale.
"""

import numpy as np
import pytest

from repro.core.adapter import AdaptationConfig, SNNAdapter
from repro.core.bayes_opt import BayesianOptimizer
from repro.core.objectives import AccuracyDropObjective, EnergyAwareObjective
from repro.core.weight_sharing import WeightStore
from repro.experiments import run_figure1, run_figure3, run_table1_cell
from repro.experiments.config import SMOKE
from repro.models import build_single_block_template, get_template
from repro.training.snn_trainer import SNNTrainingConfig
from repro.training.trainer import TrainingConfig


def _fast_snn_config(epochs=1):
    return SNNTrainingConfig(epochs=epochs, batch_size=16, learning_rate=0.05, num_steps=3, seed=0)


class TestAccuracyDropObjective:
    def test_returns_complete_result(self, single_block_template, tiny_dvs_splits):
        objective = AccuracyDropObjective(
            template=single_block_template,
            splits=tiny_dvs_splits,
            training_config=_fast_snn_config(),
            measure_macs=True,
        )
        result = objective(single_block_template.default_architecture())
        assert 0.0 <= result.accuracy <= 1.0
        assert result.objective_value == pytest.approx(1.0 - result.accuracy)
        assert 0.0 <= result.firing_rate <= 1.0
        assert result.macs > 0
        assert result.history is not None and result.history.num_epochs == 1

    def test_reference_accuracy_defines_drop(self, single_block_template, tiny_dvs_splits):
        objective = AccuracyDropObjective(
            template=single_block_template,
            splits=tiny_dvs_splits,
            training_config=_fast_snn_config(),
            reference_accuracy=0.9,
            measure_firing_rate=False,
        )
        result = objective(single_block_template.default_architecture())
        assert result.objective_value == pytest.approx(0.9 - result.accuracy)

    def test_weight_store_populated_and_used(self, single_block_template, tiny_dvs_splits):
        store = WeightStore()
        objective = AccuracyDropObjective(
            template=single_block_template,
            splits=tiny_dvs_splits,
            training_config=_fast_snn_config(),
            weight_store=store,
            measure_firing_rate=False,
        )
        assert store.is_empty
        objective(single_block_template.default_architecture())
        assert not store.is_empty
        # the next candidate starts from the stored weights
        model = objective.build_model(single_block_template.default_architecture())
        report = store.apply_to(model)
        assert report["loaded"] > 0

    def test_energy_aware_objective_adds_penalty(self, single_block_template, tiny_dvs_splits):
        base = AccuracyDropObjective(
            template=single_block_template,
            splits=tiny_dvs_splits,
            training_config=_fast_snn_config(),
        )
        wrapped = EnergyAwareObjective(base, firing_rate_weight=0.5)
        result = wrapped(single_block_template.default_architecture())
        assert result.objective_value >= result.extra["raw_objective"]
        assert result.extra["penalty"] == pytest.approx(0.5 * result.firing_rate)


class TestBayesianOptimizationWithTraining:
    def test_search_runs_and_respects_space(self, single_block_template, tiny_dvs_splits):
        objective = AccuracyDropObjective(
            template=single_block_template,
            splits=tiny_dvs_splits,
            training_config=_fast_snn_config(),
            weight_store=WeightStore(),
            measure_firing_rate=False,
        )
        space = single_block_template.search_space()
        optimizer = BayesianOptimizer(space, objective, initial_points=2, candidate_pool_size=16, rng=0)
        history = optimizer.optimize(2)
        assert history.num_evaluations == 4
        for record in history:
            assert space.contains(record.spec)


class TestSNNAdapter:
    @pytest.fixture
    def adaptation_config(self):
        return AdaptationConfig(
            ann_training=TrainingConfig(epochs=1, batch_size=16, learning_rate=0.05, seed=0),
            snn_training=_fast_snn_config(),
            candidate_finetune_epochs=1,
            final_finetune_epochs=1,
            bo_iterations=1,
            bo_initial_points=2,
            seed=0,
        )

    def test_adapter_on_event_data_omits_ann(self, tiny_dvs_splits, adaptation_config):
        template = build_single_block_template(input_channels=2, num_classes=10, channels=4)
        result = SNNAdapter(template, tiny_dvs_splits, adaptation_config).run()
        assert result.ann_accuracy is None
        assert result.accuracy_drop_before is None
        assert 0.0 <= result.snn_accuracy <= 1.0
        assert result.optimized_accuracy >= result.snn_accuracy  # adapter never regresses
        assert result.history.num_evaluations == 3
        assert result.best_spec.num_blocks() == 1
        assert "optimized SNN" in result.summary()

    def test_adapter_on_static_data_trains_ann(self, tiny_static_splits, adaptation_config):
        template = build_single_block_template(input_channels=3, num_classes=10, channels=4)
        result = SNNAdapter(template, tiny_static_splits, adaptation_config).run()
        assert result.ann_accuracy is not None
        assert result.accuracy_drop_before is not None
        assert result.accuracy_drop_after is not None
        assert result.accuracy_improvement == pytest.approx(
            result.optimized_accuracy - result.snn_accuracy
        )


class TestExperimentHarnesses:
    def test_figure1_smoke(self, tiny_dvs_splits):
        result = run_figure1("dsc", scale=SMOKE, splits=tiny_dvs_splits, n_skip_values=[0, 2], seed=0)
        assert result.n_skips() == [0, 2]
        assert all(0.0 <= acc <= 1.0 for acc in result.snn_accuracies())
        assert all(0.0 <= rate <= 1.0 for rate in result.firing_rates())
        # DSC concatenation must increase the MAC count
        assert result.macs()[1] > result.macs()[0]

    def test_figure1_asc_keeps_macs_constant(self, tiny_dvs_splits):
        result = run_figure1("asc", scale=SMOKE, splits=tiny_dvs_splits, n_skip_values=[0, 3], seed=0)
        assert result.macs()[0] == result.macs()[1]

    def test_figure3_smoke_structure(self):
        scale = SMOKE.with_overrides(num_samples_dvs=40, search_iterations=3, figure3_runs=1, bo_initial_points=1)
        result = run_figure3(scale=scale, seed=0)
        assert len(result.bo_curve.runs) == 1 and len(result.rs_curve.runs) == 1
        assert len(result.rs_curve.runs[0]) == 3
        # incumbent curves are monotonically non-decreasing in accuracy
        for run in result.bo_curve.runs + result.rs_curve.runs:
            assert all(run[i + 1] >= run[i] - 1e-12 for i in range(len(run) - 1))

    def test_table1_cell_smoke(self):
        scale = SMOKE.with_overrides(num_samples_dvs=40)
        result = run_table1_cell("cifar10-dvs", "mobilenetv2", scale=scale, seed=0)
        assert result.model_name == "mobilenetv2"
        assert result.dataset_name == "synthetic-cifar10-dvs"
        assert 0.0 <= result.optimized_firing_rate <= 1.0
