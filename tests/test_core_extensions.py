"""Tests of the search extensions: caching, multi-fidelity, local/evolutionary search."""

import numpy as np
import pytest

from repro.core.adjacency import ASC
from repro.core.cache import CachedObjective, spec_key
from repro.core.local_search import EvolutionarySearch, LocalSearch
from repro.core.multi_fidelity import (
    FidelityRung,
    FidelitySchedule,
    MultiFidelityObjective,
    SuccessiveHalvingSearch,
)
from repro.core.objectives import AccuracyDropObjective, EvaluationResult, Objective
from repro.core.search_space import ArchitectureSpec, BlockSearchInfo, SearchSpace
from repro.core.weight_sharing import WeightStore
from repro.training.snn_trainer import SNNTrainingConfig


class CountingObjective(Objective):
    """Deterministic synthetic objective counting non-ASC entries (see optimizer tests)."""

    def __init__(self):
        self.calls = 0

    def __call__(self, spec: ArchitectureSpec) -> EvaluationResult:
        self.calls += 1
        encoding = spec.encode()
        value = float(np.sum(encoding != ASC)) / max(len(encoding), 1)
        return EvaluationResult(spec=spec, objective_value=value, accuracy=1.0 - value, firing_rate=0.1)


def _space(depth=4, blocks=1):
    return SearchSpace([BlockSearchInfo(depth=depth, name=f"b{i}") for i in range(blocks)])


class TestCachedObjective:
    def test_cache_hits_avoid_reevaluation(self):
        space = _space()
        base = CountingObjective()
        cached = CachedObjective(base)
        spec = space.sample(rng=0)
        first = cached(spec)
        second = cached(spec)
        assert base.calls == 1
        assert cached.hits == 1 and cached.misses == 1
        assert first.objective_value == second.objective_value
        assert cached.hit_rate == pytest.approx(0.5)
        assert spec in cached and len(cached) == 1

    def test_spec_key_stable(self):
        space = _space()
        spec = space.sample(rng=1)
        assert spec_key(spec) == spec_key(space.decode(spec.encode()))

    def test_best_and_results(self):
        space = _space()
        cached = CachedObjective(CountingObjective())
        for seed in range(5):
            cached(space.sample(rng=seed))
        best = cached.best()
        assert best.objective_value == min(r.objective_value for r in cached.results())

    def test_best_on_empty_raises(self):
        with pytest.raises(ValueError):
            CachedObjective(CountingObjective()).best()

    def test_save_and_load_table(self, tmp_path):
        space = _space()
        cached = CachedObjective(CountingObjective())
        specs = [space.sample(rng=seed) for seed in range(4)]
        for spec in specs:
            cached(spec)
        path = tmp_path / "table.json"
        cached.save(path)
        loaded = CachedObjective.load_table(path, space)
        assert len(loaded) == len(cached)
        for spec in specs:
            assert loaded(spec).objective_value == pytest.approx(cached(spec).objective_value)
        # unknown architectures raise because no fallback objective was given
        with pytest.raises(KeyError):
            unseen = space.decode(np.full(space.encoding_length(), 2))
            if unseen.encode().tobytes() not in {s.encode().tobytes() for s in specs}:
                loaded(unseen)
            else:  # pragma: no cover - astronomically unlikely collision
                raise KeyError


class TestFidelitySchedule:
    def test_default_schedule_valid(self):
        schedule = FidelitySchedule()
        assert len(schedule) == 3

    def test_geometric_ladder(self):
        schedule = FidelitySchedule.geometric(1, 8, eta=2.0)
        assert [rung.epochs for rung in schedule.rungs] == [1, 2, 4, 8]
        assert schedule.rungs[-1].keep_fraction == 1.0

    def test_invalid_rungs(self):
        with pytest.raises(ValueError):
            FidelityRung(0, 0.5)
        with pytest.raises(ValueError):
            FidelityRung(2, 0.0)
        with pytest.raises(ValueError):
            FidelitySchedule([FidelityRung(4, 0.5), FidelityRung(2, 0.5)])
        with pytest.raises(ValueError):
            FidelitySchedule([])
        with pytest.raises(ValueError):
            FidelitySchedule.geometric(4, 2)


class TestMultiFidelity:
    def test_objective_fidelity_switch(self, single_block_template, tiny_dvs_splits):
        base = AccuracyDropObjective(
            template=single_block_template,
            splits=tiny_dvs_splits,
            training_config=SNNTrainingConfig(epochs=3, batch_size=16, num_steps=3, seed=0),
            measure_firing_rate=False,
        )
        mf = MultiFidelityObjective(base)
        result = mf.evaluate(single_block_template.default_architecture(), epochs=1)
        assert result.extra["fidelity_epochs"] == 1.0
        assert result.history.num_epochs == 1
        # the base configuration is restored after the call
        assert base.training_config.epochs == 3
        with pytest.raises(ValueError):
            mf.evaluate(single_block_template.default_architecture(), epochs=0)

    def test_successive_halving_promotes_best(self):
        """On the synthetic objective the final rung must contain the best low-fidelity candidates."""

        class SyntheticMF:
            """Multi-fidelity view of the counting objective (fidelity-independent)."""

            def __init__(self):
                self.base = CountingObjective()

            def evaluate(self, spec, epochs):
                result = self.base(spec)
                result.extra["fidelity_epochs"] = float(epochs)
                return result

            def __call__(self, spec):
                return self.evaluate(spec, 1)

        space = _space(depth=4)
        search = SuccessiveHalvingSearch(
            space,
            SyntheticMF(),
            schedule=FidelitySchedule([FidelityRung(1, 0.5), FidelityRung(2, 1.0)]),
            initial_candidates=6,
            rng=0,
        )
        history = search.optimize()
        # 6 at rung 0 + 3 survivors at rung 1
        assert history.num_evaluations == 9
        rung1 = [record for record in history if record.source == "sh-rung1"]
        rung0 = [record for record in history if record.source == "sh-rung0"]
        best_rung0 = sorted(r.objective_value for r in rung0)[:3]
        assert sorted(r.objective_value for r in rung1) == pytest.approx(best_rung0)
        assert search.best_spec() == history.best().spec

    def test_successive_halving_validation(self):
        with pytest.raises(ValueError):
            SuccessiveHalvingSearch(_space(), MultiFidelityObjective.__new__(MultiFidelityObjective), initial_candidates=0)


class TestLocalSearch:
    def test_improves_over_start_on_synthetic_objective(self):
        space = _space(depth=4)
        objective = CountingObjective()
        search = LocalSearch(space, objective, rng=0)
        history = search.optimize(max_evaluations=30)
        start_value = list(history)[0].objective_value
        assert history.best().objective_value <= start_value
        assert objective.calls == history.num_evaluations <= 30

    def test_stops_at_local_optimum(self):
        space = SearchSpace([BlockSearchInfo(depth=2)])  # 3 architectures, optimum easy to reach
        search = LocalSearch(space, CountingObjective(), rng=0)
        history = search.optimize(max_evaluations=50)
        assert history.best().objective_value == 0.0
        assert history.num_evaluations < 50

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            LocalSearch(_space(), CountingObjective()).optimize(0)


class TestEvolutionarySearch:
    def test_reaches_good_solutions(self):
        space = _space(depth=4)
        search = EvolutionarySearch(space, CountingObjective(), population_size=6, rng=0)
        history = search.optimize(max_evaluations=40)
        assert history.num_evaluations == 40
        assert history.best().objective_value <= 0.5
        assert search.best_spec() == history.best().spec

    def test_respects_budget_smaller_than_population(self):
        space = _space(depth=3)
        search = EvolutionarySearch(space, CountingObjective(), population_size=8, rng=0)
        history = search.optimize(max_evaluations=5)
        assert history.num_evaluations == 5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EvolutionarySearch(_space(), CountingObjective(), population_size=1)
        with pytest.raises(ValueError):
            EvolutionarySearch(_space(), CountingObjective(), tournament_size=0)
        with pytest.raises(ValueError):
            EvolutionarySearch(_space(), CountingObjective()).optimize(0)

    def test_weight_sharing_compatible(self, single_block_template, tiny_dvs_splits):
        """Evolutionary search can drive the real training objective with shared weights."""
        objective = AccuracyDropObjective(
            template=single_block_template,
            splits=tiny_dvs_splits,
            training_config=SNNTrainingConfig(epochs=1, batch_size=16, num_steps=3, seed=0),
            weight_store=WeightStore(),
            measure_firing_rate=False,
        )
        search = EvolutionarySearch(single_block_template.search_space(), objective, population_size=2, rng=0)
        history = search.optimize(max_evaluations=3)
        assert history.num_evaluations == 3


class TestEnergyMetricsAndMACMemoisation:
    def _objective(self, single_block_template, tiny_dvs_splits, **kwargs):
        return AccuracyDropObjective(
            template=single_block_template,
            splits=tiny_dvs_splits,
            training_config=SNNTrainingConfig(epochs=1, batch_size=16, num_steps=3, seed=0),
            **kwargs,
        )

    def test_measure_energy_populates_the_metrics_dict(self, single_block_template, tiny_dvs_splits):
        objective = self._objective(single_block_template, tiny_dvs_splits, measure_energy=True)
        result = objective(single_block_template.default_architecture())
        for key in ("val_accuracy", "firing_rate", "macs", "energy_nj", "ann_energy_nj", "latency_steps"):
            assert key in result.metrics, key
        assert result.metrics["macs"] == result.macs > 0
        assert result.metrics["latency_steps"] == 3.0
        assert result.metrics["val_accuracy"] == pytest.approx(result.accuracy)

    def test_mac_trace_is_memoised_per_architecture(self, single_block_template, tiny_dvs_splits):
        """Re-evaluating an architecture must not re-run the MAC forward trace
        (the count is a pure function of the architecture, not the weights)."""
        objective = self._objective(single_block_template, tiny_dvs_splits, measure_energy=True)
        spec = single_block_template.default_architecture()
        first = objective(spec)
        second = objective(spec)
        assert objective.num_evaluations == 2
        assert objective.mac_traces == 1
        assert first.macs == second.macs
        other = single_block_template.search_space().sample(rng=0)
        objective(other)
        assert objective.mac_traces == (1 if np.array_equal(other.encode(), spec.encode()) else 2)

    def test_unmeasured_quantities_stay_out_of_metrics(self, single_block_template, tiny_dvs_splits):
        """An unmeasured firing rate must be absent, not recorded as 0.0 —
        a multi-objective search over it should fail loudly."""
        objective = self._objective(single_block_template, tiny_dvs_splits, measure_firing_rate=False)
        result = objective(single_block_template.default_architecture())
        assert set(result.metrics) == {"val_accuracy"}
        assert objective.mac_traces == 0
        measured = self._objective(single_block_template, tiny_dvs_splits)
        assert "firing_rate" in measured(single_block_template.default_architecture()).metrics
