"""Tests of the Module/Parameter registry, state_dict and containers."""

import numpy as np
import pytest

from repro.nn import Conv2d, Linear, ModuleList, ReLU, Sequential
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class ToyModule(Module):
    def __init__(self):
        super().__init__()
        self.linear = Linear(4, 3, rng=np.random.default_rng(0))
        self.weight_scale = Parameter(np.ones(1), name="weight_scale")
        self.register_buffer("counter", np.zeros(1))

    def forward(self, x):
        return self.linear(x) * self.weight_scale


class TestRegistration:
    def test_parameters_discovered(self):
        module = ToyModule()
        names = dict(module.named_parameters())
        assert set(names) == {"linear.weight", "linear.bias", "weight_scale"}

    def test_num_parameters(self):
        module = ToyModule()
        assert module.num_parameters() == 4 * 3 + 3 + 1

    def test_named_modules_includes_children(self):
        module = ToyModule()
        names = [name for name, _ in module.named_modules()]
        assert "" in names and "linear" in names

    def test_children(self):
        module = ToyModule()
        assert len(module.children()) == 1

    def test_buffers_registered(self):
        module = ToyModule()
        buffers = dict(module.named_buffers())
        assert "counter" in buffers

    def test_update_buffer(self):
        module = ToyModule()
        module.update_buffer("counter", np.array([5.0]))
        assert module.counter[0] == 5.0

    def test_update_unknown_buffer_raises(self):
        module = ToyModule()
        with pytest.raises(KeyError):
            module.update_buffer("nope", np.zeros(1))


class TestStateDict:
    def test_roundtrip(self):
        source = ToyModule()
        target = ToyModule()
        # make them differ
        for param in source.parameters():
            param.data += 1.0
        state = source.state_dict()
        target.load_state_dict(state)
        for (_, a), (_, b) in zip(source.named_parameters(), target.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_state_dict_copies_data(self):
        module = ToyModule()
        state = module.state_dict()
        state["weight_scale"][...] = 99.0
        assert module.weight_scale.data[0] == 1.0

    def test_strict_load_with_unknown_key_raises(self):
        module = ToyModule()
        state = module.state_dict()
        state["ghost"] = np.zeros(3)
        with pytest.raises(KeyError):
            module.load_state_dict(state, strict=True)

    def test_non_strict_load_reports_skipped(self):
        module = ToyModule()
        state = module.state_dict()
        state["ghost"] = np.zeros(3)
        state["linear.weight"] = np.zeros((7, 7))  # wrong shape
        skipped = module.load_state_dict(state, strict=False)
        assert "ghost" in skipped and "linear.weight" in skipped

    def test_buffers_in_state_dict(self):
        module = ToyModule()
        module.update_buffer("counter", np.array([3.0]))
        other = ToyModule()
        other.load_state_dict(module.state_dict())
        assert other.counter[0] == 3.0


class TestTrainEval:
    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2), ReLU(), Linear(2, 2))
        seq.eval()
        assert all(not module.training for module in seq.modules())
        seq.train()
        assert all(module.training for module in seq.modules())

    def test_zero_grad_clears_all(self):
        module = ToyModule()
        out = module(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None and p.grad.any() for p in module.parameters())
        module.zero_grad()
        assert all(p.grad is None or not p.grad.any() for p in module.parameters())


class TestContainers:
    def test_sequential_forward_order(self):
        seq = Sequential(Linear(3, 5, rng=np.random.default_rng(0)), ReLU(), Linear(5, 2, rng=np.random.default_rng(1)))
        out = seq(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 2)

    def test_sequential_append_and_index(self):
        seq = Sequential(Linear(2, 2))
        seq.append(ReLU())
        assert len(seq) == 2
        assert isinstance(seq[1], ReLU)

    def test_sequential_registers_parameters(self):
        seq = Sequential(Linear(2, 2), Linear(2, 2))
        assert len(seq.parameters()) == 4

    def test_module_list_iteration(self):
        items = ModuleList([Linear(2, 2), Linear(2, 3)])
        assert len(items) == 2
        assert [m.out_features for m in items] == [2, 3]

    def test_module_list_cannot_be_called(self):
        items = ModuleList([Linear(2, 2)])
        with pytest.raises(RuntimeError):
            items(Tensor(np.ones((1, 2))))

    def test_module_list_parameters_registered(self):
        items = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(items.parameters()) == 4

    def test_repr_contains_children(self):
        seq = Sequential(Linear(2, 2), ReLU())
        text = repr(seq)
        assert "Linear" in text and "ReLU" in text
