"""Acceptance tests of the Pareto-front experiment harness and CLI.

Pins the issue's acceptance criteria end-to-end at smoke scale: the run
produces a non-dominated front, the hypervolume trace is non-decreasing, and
a fully-cached re-run (including ``async_workers=2`` over a sharded store)
reproduces the identical front without re-evaluating a single candidate.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core.pareto import non_dominated_mask
from repro.experiments import get_scale
from repro.experiments.io import load_result, save_result
from repro.experiments.pareto_front import format_pareto, plot_pareto, run_pareto_front

SMOKE = get_scale("smoke")


def run_smoke(**kwargs):
    defaults = dict(
        scale=SMOKE,
        dataset="cifar10-dvs",
        model="single_block",
        objectives=("accuracy", "energy"),
        iterations=4,
        seed=0,
    )
    defaults.update(kwargs)
    return run_pareto_front(**defaults)


@pytest.fixture(scope="module")
def smoke_result():
    return run_smoke()


class TestParetoExperiment:
    def test_front_is_non_dominated_and_hypervolume_monotone(self, smoke_result):
        result = smoke_result
        assert result.front_size() >= 1
        assert result.num_evaluations == 4  # warm start counts toward the budget
        # re-derive minimisation vectors from the reported raw objectives
        values = np.array(
            [[-p.objectives["accuracy"], p.objectives["energy"]] for p in result.front]
        )
        assert non_dominated_mask(values).all()
        curve = result.hypervolume_curve
        assert curve and all(b >= a - 1e-12 for a, b in zip(curve, curve[1:]))
        assert result.final_hypervolume() > 0
        assert len(result.reference_point) == 2

    def test_front_points_record_raw_objectives(self, smoke_result):
        for point in smoke_result.front:
            assert set(point.objectives) == {"accuracy", "energy"}
            assert 0.0 <= point.objectives["accuracy"] <= 1.0
            assert point.objectives["energy"] > 0
            assert len(point.encoding) > 0

    def test_format_and_plot(self, smoke_result):
        text = format_pareto(smoke_result)
        assert "Pareto front" in text and "hypervolume" in text
        chart = plot_pareto(smoke_result)
        assert "accuracy" in chart and "energy" in chart

    def test_save_load_round_trip(self, smoke_result, tmp_path):
        path = tmp_path / "pareto.json"
        save_result(smoke_result, path)
        loaded = load_result(path)
        assert loaded.objective_names == smoke_result.objective_names
        assert loaded.hypervolume_curve == pytest.approx(smoke_result.hypervolume_curve)
        assert [p.objectives for p in loaded.front] == [
            {k: pytest.approx(v) for k, v in p.objectives.items()} for p in smoke_result.front
        ]

    def test_energy_budget_reports_feasible_subset(self):
        unbounded = run_smoke(iterations=3)
        budget = max(p.objectives["energy"] for p in unbounded.front)
        result = run_smoke(iterations=3, energy_budget=budget)
        assert result.energy_budget == budget
        feasible = result.feasible_front()
        assert all(p.objectives["energy"] <= budget for p in feasible)
        assert "energy budget" in format_pareto(result)


def _front_key(result):
    return [
        (tuple(point.encoding), tuple(sorted(point.objectives.items())))
        for point in result.front
    ]


class TestCachedRoundTrip:
    @pytest.mark.parametrize(
        "engine", [dict(), dict(async_workers=2, cache_sharded=True)], ids=["serial", "async-sharded"]
    )
    def test_fully_cached_rerun_reproduces_the_front(self, tmp_path, engine):
        """Acceptance: the run round-trips through the persistent store — a
        re-run answers every candidate from disk and emits the same front."""
        cold = run_smoke(cache_dir=str(tmp_path), **engine)
        assert cold.fresh_evaluations == cold.num_evaluations
        warm = run_smoke(cache_dir=str(tmp_path), **engine)
        assert warm.fresh_evaluations == 0
        assert warm.num_evaluations == cold.num_evaluations
        assert _front_key(warm) == _front_key(cold)
        assert warm.hypervolume_curve == pytest.approx(cold.hypervolume_curve)


class TestParetoCLI:
    def test_pareto_subcommand(self, tmp_path, capsys):
        output = tmp_path / "pareto.json"
        code = main(
            [
                "pareto",
                "--scale",
                "smoke",
                "--model",
                "single_block",
                "--objectives",
                "accuracy,energy",
                "--iterations",
                "3",
                "--plot",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "Pareto front" in printed and "hypervolume" in printed
        assert output.exists()
        assert load_result(output).front_size() >= 1

    def test_pareto_with_budget_and_cache(self, tmp_path, capsys):
        code = main(
            [
                "pareto",
                "--scale",
                "smoke",
                "--model",
                "single_block",
                "--iterations",
                "3",
                "--energy-budget",
                "1e9",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        assert "energy budget" in capsys.readouterr().out
