"""Registry-driven differential checks over the primitive IR.

Every :class:`~repro.tensor.primitives.Primitive` ships its own sample
generators, so this module is intentionally thin: it sweeps the registry and
delegates to :func:`repro.tensor.gradcheck.check_primitive`, which runs

* float64 — finite-difference vjp validation plus jvp/vjp dot-product
  consistency (``<w, Jv> == <J^T w, v>``);
* float32 — forward and vjp compared against the float64 reference under the
  pinned tolerance contract (:mod:`repro.tensor.tolerance`).

A primitive added without samples, without a vjp, or with a wrong adjoint
fails here without anyone writing a bespoke test for it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor.gradcheck import check_primitive
from repro.tensor.primitives import all_primitives, get_primitive

PRIMITIVE_NAMES = sorted(all_primitives())


def test_registry_is_populated():
    # the fused training kernels lean on these adjoints directly; their
    # presence in the registry is what the gradcheck sweep below certifies
    for name in ("conv2d", "avg_pool2d", "matmul", "mean", "spike", "where"):
        assert name in PRIMITIVE_NAMES


@pytest.mark.parametrize("name", PRIMITIVE_NAMES)
def test_primitive_declares_contract(name):
    primitive = get_primitive(name)
    assert primitive.vjp is not None, f"{name} has no hand-written adjoint"
    assert primitive.jvp is not None, f"{name} has no tangent rule"
    assert primitive.samples, f"{name} declares no gradcheck samples"


@pytest.mark.parametrize("name", PRIMITIVE_NAMES)
def test_primitive_gradcheck_float64(name):
    rng = np.random.default_rng(1234)
    checked = check_primitive(get_primitive(name), rng=rng, dtype=np.float64)
    assert checked >= 1


@pytest.mark.parametrize("name", PRIMITIVE_NAMES)
def test_primitive_float32_contract(name):
    rng = np.random.default_rng(4321)
    checked = check_primitive(get_primitive(name), rng=rng, dtype=np.float32)
    assert checked >= 1
