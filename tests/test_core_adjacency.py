"""Tests of the adjacency-matrix skip encoding (paper Eq. 1)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.adjacency import ASC, DSC, NO_CONNECTION, BlockAdjacency, connection_name


class TestConstruction:
    def test_empty_block_has_no_skips(self):
        block = BlockAdjacency(4)
        assert block.total_skips() == 0
        assert block.num_skips_per_layer() == [0, 0, 0, 0]

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            BlockAdjacency(0)

    def test_matrix_shape_validation(self):
        with pytest.raises(ValueError):
            BlockAdjacency(3, matrix=np.zeros((3, 3)))

    def test_invalid_code_rejected(self):
        matrix = np.zeros((5, 5), dtype=int)
        matrix[0, 2] = 7
        with pytest.raises(ValueError):
            BlockAdjacency(4, matrix=matrix)

    def test_backward_connection_rejected(self):
        matrix = np.zeros((5, 5), dtype=int)
        matrix[3, 1] = ASC
        with pytest.raises(ValueError):
            BlockAdjacency(4, matrix=matrix)

    def test_sequential_position_rejected(self):
        matrix = np.zeros((5, 5), dtype=int)
        matrix[1, 2] = DSC  # j == i + 1 is the fixed sequential edge
        with pytest.raises(ValueError):
            BlockAdjacency(4, matrix=matrix)

    def test_connection_name(self):
        assert connection_name(NO_CONNECTION) == "none"
        assert connection_name(DSC) == "dsc"
        assert connection_name(ASC) == "asc"
        with pytest.raises(ValueError):
            connection_name(5)


class TestSkipSemantics:
    def test_skip_positions_match_paper_example(self):
        """Second layer can have at most 1 skip; fourth layer at most 3 (Section III-A)."""
        block = BlockAdjacency(4)
        per_destination = {}
        for i, j in block.skip_positions():
            per_destination.setdefault(j, []).append(i)
        assert 1 not in per_destination            # first layer: no possible skips
        assert len(per_destination[2]) == 1        # second layer
        assert len(per_destination[3]) == 2        # third layer
        assert len(per_destination[4]) == 3        # fourth layer

    def test_max_skips(self):
        assert BlockAdjacency(4).max_skips() == 6
        assert BlockAdjacency(2).max_skips() == 1
        assert BlockAdjacency(1).max_skips() == 0

    def test_sources_of(self):
        block = BlockAdjacency(4).with_connection(0, 3, DSC).with_connection(1, 3, ASC)
        assert block.sources_of(2) == [(0, DSC), (1, ASC)]
        assert block.sources_of(0) == []
        with pytest.raises(IndexError):
            block.sources_of(4)

    def test_count_by_type(self):
        block = BlockAdjacency(4).with_connection(0, 2, DSC).with_connection(0, 4, ASC).with_connection(1, 4, ASC)
        counts = block.count_by_type()
        assert counts[DSC] == 1 and counts[ASC] == 2

    def test_with_connection_returns_copy(self):
        original = BlockAdjacency(4)
        modified = original.with_connection(0, 2, DSC)
        assert original.total_skips() == 0
        assert modified.total_skips() == 1

    def test_with_connection_invalid_position(self):
        block = BlockAdjacency(4)
        with pytest.raises(ValueError):
            block.with_connection(0, 1, DSC)
        with pytest.raises(ValueError):
            block.with_connection(2, 9, DSC)
        with pytest.raises(ValueError):
            block.with_connection(0, 2, 9)


class TestFactories:
    def test_fully_connected_dsc_is_densenet(self):
        block = BlockAdjacency.fully_connected(4, code=DSC)
        assert block.total_skips() == block.max_skips() == 6
        assert block.count_by_type()[DSC] == 6

    def test_with_final_layer_skips_counts(self):
        for n in range(4):
            block = BlockAdjacency.with_final_layer_skips(4, n, ASC)
            assert block.num_skips_per_layer() == [0, 0, 0, n]

    def test_with_final_layer_skips_clamps(self):
        block = BlockAdjacency.with_final_layer_skips(4, 10, DSC)
        assert block.num_skips_per_layer()[-1] == 3

    def test_with_final_layer_prefers_recent_sources(self):
        block = BlockAdjacency.with_final_layer_skips(4, 1, ASC)
        assert block.sources_of(3) == [(2, ASC)]

    def test_with_total_skips(self):
        block = BlockAdjacency.with_total_skips(4, 3, DSC, rng=0)
        assert block.total_skips() == 3
        assert block.count_by_type()[DSC] == 3

    def test_random_density_extremes(self):
        assert BlockAdjacency.random(4, rng=0, density=0.0).total_skips() == 0
        assert BlockAdjacency.random(4, rng=0, density=1.0).total_skips() == 6

    def test_random_respects_allowed_types(self):
        block = BlockAdjacency.random(4, rng=0, density=1.0, allowed=(ASC,))
        assert block.count_by_type()[DSC] == 0
        assert block.count_by_type()[ASC] == 6


class TestEncoding:
    def test_encode_length(self):
        assert BlockAdjacency(4).encoding_length() == 6
        assert BlockAdjacency(3).encoding_length() == 3

    def test_encode_decode_roundtrip(self):
        block = BlockAdjacency.random(4, rng=3, density=0.7)
        decoded = BlockAdjacency.from_encoding(4, block.encode())
        assert decoded == block

    def test_from_encoding_validates_length_and_codes(self):
        with pytest.raises(ValueError):
            BlockAdjacency.from_encoding(4, [0, 1])
        with pytest.raises(ValueError):
            BlockAdjacency.from_encoding(2, [9])

    def test_equality_and_hash(self):
        a = BlockAdjacency(3).with_connection(0, 2, DSC)
        b = BlockAdjacency(3).with_connection(0, 2, DSC)
        c = BlockAdjacency(3).with_connection(0, 2, ASC)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_copy_is_deep(self):
        a = BlockAdjacency(3)
        b = a.copy()
        b.matrix[0, 2] = DSC
        assert a.total_skips() == 0


class TestGraphExport:
    def test_networkx_nodes_and_sequential_edges(self):
        graph = BlockAdjacency(4).to_networkx()
        assert graph.number_of_nodes() == 5
        assert all(graph.has_edge(i, i + 1) for i in range(4))

    def test_networkx_skip_edges_labelled(self):
        block = BlockAdjacency(4).with_connection(0, 3, DSC)
        graph = block.to_networkx()
        assert graph.edges[0, 3]["kind"] == "dsc"

    def test_always_acyclic(self):
        for seed in range(5):
            assert BlockAdjacency.random(5, rng=seed, density=0.8).is_acyclic()

    def test_longest_path_grows_with_depth(self):
        graph = BlockAdjacency(6).to_networkx()
        assert nx.dag_longest_path_length(graph) == 6


class TestNeighbors:
    def test_neighbor_count(self):
        block = BlockAdjacency(3)  # 3 positions x 2 alternative codes each
        assert sum(1 for _ in block.neighbors()) == 6

    def test_neighbors_differ_in_exactly_one_entry(self):
        block = BlockAdjacency.random(4, rng=1, density=0.5)
        for neighbor in block.neighbors():
            assert int(np.sum(neighbor.encode() != block.encode())) == 1
