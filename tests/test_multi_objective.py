"""Multi-objective Bayesian optimizer: specs, constraints, engines, caching.

The synthetic objective used throughout derives every metric purely from the
architecture encoding (instant, deterministic, picklable), so engine variants
can be compared bit-for-bit.
"""

import numpy as np
import pytest

from repro.core.cache import CachedObjective, PersistentEvaluationStore, ShardedEvaluationStore
from repro.core.multi_objective import (
    MultiObjectiveBayesianOptimizer,
    ObjectiveConstraint,
    ObjectiveSpec,
    get_objective_spec,
    resolve_objective_specs,
)
from repro.core.objectives import SyntheticWeightObjective
from repro.core.pareto import non_dominated_mask
from repro.core.search_space import BlockSearchInfo, SearchSpace


def make_space(depth: int = 5) -> SearchSpace:
    return SearchSpace([BlockSearchInfo(depth=depth, name="block")], name="mo-test")


def make_optimizer(objective=None, **kwargs) -> MultiObjectiveBayesianOptimizer:
    defaults = dict(
        objectives=("accuracy", "energy"),
        initial_points=4,
        batch_size=1,
        candidate_pool_size=32,
        rng=0,
    )
    defaults.update(kwargs)
    if objective is None:
        objective = SyntheticWeightObjective()
    return MultiObjectiveBayesianOptimizer(make_space(), objective, **defaults)


# ---------------------------------------------------------------------------
# objective specs and constraints
# ---------------------------------------------------------------------------


class TestObjectiveSpecs:
    def test_builtin_lookup_normalises_names(self):
        assert get_objective_spec("Energy").metric == "energy_nj"
        assert get_objective_spec("firing-rate").metric == "firing_rate"
        with pytest.raises(KeyError):
            get_objective_spec("latencyy")

    def test_maximised_metric_is_sign_flipped(self):
        spec = get_objective_spec("accuracy")
        assert spec.value({"val_accuracy": 0.8}) == pytest.approx(-0.8)
        assert spec.raw({"val_accuracy": 0.8}) == pytest.approx(0.8)

    def test_missing_metric_raises_with_guidance(self):
        with pytest.raises(KeyError, match="measure_energy"):
            get_objective_spec("energy").raw({"val_accuracy": 0.5})

    def test_resolution_rejects_duplicates_and_singletons(self):
        with pytest.raises(ValueError):
            resolve_objective_specs(["accuracy"])
        with pytest.raises(ValueError):
            resolve_objective_specs(["accuracy", "Accuracy"])
        specs = resolve_objective_specs(["accuracy", ObjectiveSpec("e", metric="energy_nj")])
        assert [s.name for s in specs] == ["accuracy", "e"]

    def test_constraint_feasibility_and_value_bounds(self):
        energy = get_objective_spec("energy")
        accuracy = get_objective_spec("accuracy")
        constraint = ObjectiveConstraint("energy", upper=2.0)
        assert constraint.feasible(energy, {"energy_nj": 1.5})
        assert not constraint.feasible(energy, {"energy_nj": 2.5})
        assert constraint.value_bounds(energy) == (None, 2.0)
        # raw accuracy >= 0.5 maps to minimisation value <= -0.5
        floor = ObjectiveConstraint("accuracy", lower=0.5)
        assert floor.value_bounds(accuracy) == (None, -0.5)
        with pytest.raises(ValueError):
            ObjectiveConstraint("energy")


# ---------------------------------------------------------------------------
# the optimizer
# ---------------------------------------------------------------------------


class TestMultiObjectiveOptimizer:
    def test_front_is_non_dominated_and_hypervolume_monotone(self):
        optimizer = make_optimizer(batch_size=2)
        history = optimizer.optimize(5)
        assert len(history) == 4 + 5 * 2
        values = optimizer.front.values_array()
        assert len(values) >= 1
        assert non_dominated_mask(values).all()
        curve = optimizer.hypervolume_history
        assert curve and all(b >= a - 1e-12 for a, b in zip(curve, curve[1:]))
        assert optimizer.hypervolume() == pytest.approx(curve[-1])

    def test_records_carry_metrics_and_primary_objective(self):
        optimizer = make_optimizer()
        optimizer.optimize(3)
        for record in optimizer.history:
            assert "val_accuracy" in record.metrics and "energy_nj" in record.metrics
        # history.best() keeps working on the scalar objective_value
        assert optimizer.history.best().objective_value == min(
            r.objective_value for r in optimizer.history
        )

    def test_front_records_sorted_by_first_objective(self):
        optimizer = make_optimizer()
        optimizer.optimize(4)
        records = optimizer.front_records()
        firsts = [optimizer.record_values(r)[0] for r in records]
        assert firsts == sorted(firsts)

    def test_unknown_constraint_objective_rejected(self):
        with pytest.raises(ValueError, match="not among the search objectives"):
            make_optimizer(constraints=[ObjectiveConstraint("latency", upper=4.0)])

    def test_constrained_search_prefers_the_feasible_region(self):
        """With a tight energy budget, the constrained run spends more of its
        budget on feasible candidates than the unconstrained twin."""
        budget = 2.0
        plain = make_optimizer(rng=3)
        plain.optimize(8)
        constrained = make_optimizer(
            rng=3, constraints=[ObjectiveConstraint("energy", upper=budget)]
        )
        constrained.optimize(8)
        feasible = sum(constrained._observed_feasible)
        assert feasible >= sum(
            1 for r in plain.history if r.metrics["energy_nj"] <= budget
        )
        assert any(constrained._observed_feasible)

    def test_fixed_reference_point_is_respected(self):
        optimizer = make_optimizer(reference_point=[0.5, 20.0])
        optimizer.optimize(2)
        np.testing.assert_allclose(optimizer.reference_point, [0.5, 20.0])
        with pytest.raises(ValueError):
            make_optimizer(reference_point=[1.0])

    def test_missing_metrics_fail_loudly(self):
        # the synthetic objective measures latency_ms but never macs or the
        # latency_steps proxy, so those objectives must fail loudly
        optimizer = make_optimizer(objectives=("accuracy", "macs"))
        with pytest.raises(KeyError, match="macs"):
            optimizer.optimize(1)
        optimizer = make_optimizer(objectives=("accuracy", "latency_steps"))
        with pytest.raises(KeyError, match="latency_steps"):
            optimizer.optimize(1)

    def test_history_swap_rebuilds_front_and_observations(self):
        """Swapping the history (the base class's supported pattern) must
        rebuild every observation-derived structure, not desync it."""
        from repro.core.bayes_opt import OptimizationHistory

        optimizer = make_optimizer()
        optimizer.optimize(3)
        stale_front = {tuple(p.values) for p in optimizer.front}
        donor = make_optimizer(rng=5)
        donor.optimize(2)
        optimizer.history = donor.history
        optimizer.optimize(2)
        assert len(optimizer._observed) == len(optimizer.history)
        history_ids = {id(r) for r in optimizer.history.records}
        assert all(id(p.payload["record"]) in history_ids for p in optimizer.front)
        values = optimizer.front.values_array()
        assert non_dominated_mask(values).all()
        # the pre-swap front is gone unless re-derived from the new history
        rebuilt = {tuple(p.values) for p in optimizer.front}
        assert rebuilt != stale_front or len(optimizer.history) == 0

        # a fresh empty history also replays cleanly (no stale observations)
        optimizer.history = OptimizationHistory()
        optimizer.optimize(1)
        assert len(optimizer._observed) == len(optimizer.history)

    def test_externally_appended_records_are_replayed(self):
        donor = make_optimizer(rng=9)
        donor.optimize(2)
        optimizer = make_optimizer()
        optimizer.optimize(2)
        optimizer.history.records.extend(donor.history.records[:2])
        optimizer.optimize(1)
        assert len(optimizer._observed) == len(optimizer.history)
        assert non_dominated_mask(optimizer.front.values_array()).all()


# ---------------------------------------------------------------------------
# engine equivalence and determinism
# ---------------------------------------------------------------------------


def _run(engine_kwargs, iterations=6, rng=0):
    optimizer = make_optimizer(rng=rng, **engine_kwargs)
    optimizer.optimize(iterations)
    proposals = [tuple(int(v) for v in r.spec.encode()) for r in optimizer.history]
    return proposals, optimizer


class TestEngines:
    def test_async_engine_is_deterministic(self):
        first, opt_a = _run({"async_workers": 2})
        second, opt_b = _run({"async_workers": 2})
        assert first == second
        np.testing.assert_allclose(
            np.sort(opt_a.front.values_array(), axis=0),
            np.sort(opt_b.front.values_array(), axis=0),
        )
        assert opt_a.hypervolume_history == opt_b.hypervolume_history

    def test_async_engine_matches_serial_budget_and_invariants(self):
        proposals, optimizer = _run({"async_workers": 3}, iterations=5)
        assert len(proposals) == 4 + 5
        assert non_dominated_mask(optimizer.front.values_array()).all()
        curve = optimizer.hypervolume_history
        assert all(b >= a - 1e-12 for a, b in zip(curve, curve[1:]))
        # completion-order records still sort back to submission order
        tickets = [r.ticket for r in optimizer.history]
        assert sorted(tickets) == list(range(len(tickets)))

    def test_async_store_equals_sequential_replay_of_the_ticket_order(self):
        """The sequencer applies weight updates in submission order, so the
        async run's store must equal a sequential evaluation of the same
        specs in ticket order."""
        from repro.core.weight_sharing import WeightStore

        store = WeightStore()
        objective = SyntheticWeightObjective(weight_store=store)
        optimizer = make_optimizer(objective=objective, rng=1, async_workers=2)
        optimizer.optimize(5)

        replay_store = WeightStore()
        replay = SyntheticWeightObjective(weight_store=replay_store)
        ordered = sorted(optimizer.history, key=lambda record: record.ticket)
        for record in ordered:
            replay(record.spec)
        assert sorted(store.state_dict()) == sorted(replay_store.state_dict())
        for key, value in store.state_dict().items():
            np.testing.assert_array_equal(value, replay_store.state_dict()[key])


# ---------------------------------------------------------------------------
# cache round trips: a fully-cached re-run replays the identical front
# ---------------------------------------------------------------------------


class PoisonObjective(SyntheticWeightObjective):
    """Raises on any real evaluation — proves a re-run was answered from disk.

    Module-level so it pickles into worker processes, where an attempted
    evaluation would otherwise go unnoticed by parent-side counters.
    """

    def __call__(self, spec):
        raise RuntimeError(f"cache miss: candidate {spec} was re-evaluated")


def _cached_run(store, async_workers=0, rng=0, iterations=6, poison=False):
    probe = PoisonObjective() if poison else SyntheticWeightObjective()
    optimizer = make_optimizer(
        objective=CachedObjective(probe, store=store),
        rng=rng,
        async_workers=async_workers,
    )
    optimizer.optimize(iterations)
    return probe, optimizer


class TestCachedReplay:
    @pytest.mark.parametrize("async_workers", [0, 2])
    def test_fully_cached_rerun_reproduces_the_front(self, tmp_path, async_workers):
        store_path = tmp_path / "evals.jsonl"
        _, first = _cached_run(
            PersistentEvaluationStore(store_path), async_workers=async_workers
        )
        assert len(first.history) == 4 + 6
        # the re-run evaluates nothing: a single cache miss raises (also from
        # inside a worker process, where parent-side counters cannot see it)
        _, second = _cached_run(
            PersistentEvaluationStore(store_path), async_workers=async_workers, poison=True
        )
        np.testing.assert_allclose(
            first.front.values_array(), second.front.values_array()
        )
        assert first.hypervolume_history == pytest.approx(second.hypervolume_history)

    def test_sharded_store_replays_across_writers(self, tmp_path):
        base = tmp_path / "evals.jsonl"
        _, first = _cached_run(ShardedEvaluationStore(base), async_workers=2)
        _, second = _cached_run(ShardedEvaluationStore(base), async_workers=2, poison=True)
        np.testing.assert_allclose(
            first.front.values_array(), second.front.values_array()
        )

    def test_rows_persist_the_metrics_dict(self, tmp_path):
        store = PersistentEvaluationStore(tmp_path / "evals.jsonl")
        _cached_run(store, iterations=2)
        rows = store.rows()
        assert rows and all("metrics" in row for row in rows)
        reloaded = PersistentEvaluationStore(tmp_path / "evals.jsonl")
        row = reloaded.rows()[0]
        assert "energy_nj" in row["metrics"] and "val_accuracy" in row["metrics"]


class TestFeasibilityProbability:
    def test_one_sided_bounds(self):
        from scipy.stats import norm

        from repro.gp.acquisition import probability_in_bounds

        mean, std = np.array([0.0, 1.0]), np.array([1.0, 2.0])
        np.testing.assert_allclose(
            probability_in_bounds(mean, std, upper=0.5), norm.cdf((0.5 - mean) / std)
        )
        np.testing.assert_allclose(
            probability_in_bounds(mean, std, lower=0.5), 1.0 - norm.cdf((0.5 - mean) / std)
        )

    def test_two_sided_bound_is_the_interval_probability(self):
        """cdf(upper) - cdf(lower), not the product of one-sided tails."""
        from scipy.stats import norm

        from repro.gp.acquisition import probability_in_bounds

        prob = probability_in_bounds(np.zeros(1), np.ones(1), lower=-0.5, upper=0.5)
        np.testing.assert_allclose(prob, norm.cdf(0.5) - norm.cdf(-0.5))

    def test_degenerate_posterior_is_an_indicator(self):
        from repro.gp.acquisition import probability_in_bounds

        prob = probability_in_bounds(np.array([1.0, 3.0]), np.zeros(2), upper=2.0)
        np.testing.assert_allclose(prob, [1.0, 0.0])
