"""Property-based tests (hypothesis) of core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.adjacency import ASC, DSC, NO_CONNECTION, BlockAdjacency
from repro.core.search_space import ArchitectureSpec, BlockSearchInfo, SearchSpace
from repro.gp.kernels import HammingKernel, Matern52Kernel, RBFKernel
from repro.snn.mac import estimate_block_macs, estimate_energy
from repro.snn.surrogate import ATanSurrogate, FastSigmoidSurrogate, TriangularSurrogate
from repro.tensor import Tensor, ops
from repro.tensor.tensor import _unbroadcast

# keep hypothesis fast and deterministic for CI
FAST = settings(max_examples=25, deadline=None)


# ---------------------------------------------------------------------------
# adjacency / search space invariants
# ---------------------------------------------------------------------------

depths = st.integers(min_value=1, max_value=6)
codes = st.sampled_from([NO_CONNECTION, DSC, ASC])


@FAST
@given(depth=depths, data=st.data())
def test_adjacency_encode_decode_roundtrip(depth, data):
    positions = BlockAdjacency(depth).skip_positions()
    encoding = data.draw(st.lists(codes, min_size=len(positions), max_size=len(positions)))
    block = BlockAdjacency.from_encoding(depth, encoding)
    assert block.encode().tolist() == list(encoding)
    assert BlockAdjacency.from_encoding(depth, block.encode()) == block


@FAST
@given(depth=depths, seed=st.integers(0, 10_000), density=st.floats(0.0, 1.0))
def test_random_adjacency_always_valid_and_acyclic(depth, seed, density):
    block = BlockAdjacency.random(depth, rng=seed, density=density)
    block.validate()  # never raises
    assert block.is_acyclic()
    assert 0 <= block.total_skips() <= block.max_skips()


@FAST
@given(depth=depths, n_skip=st.integers(0, 10), code=st.sampled_from([DSC, ASC]))
def test_final_layer_skips_clamped(depth, n_skip, code):
    block = BlockAdjacency.with_final_layer_skips(depth, n_skip, code)
    skips = block.num_skips_per_layer()
    assert skips[-1] == min(n_skip, max(depth - 1, 0))
    assert sum(skips[:-1]) == 0


@FAST
@given(depths_list=st.lists(depths, min_size=1, max_size=3), seed=st.integers(0, 1000))
def test_search_space_sample_is_contained_and_roundtrips(depths_list, seed):
    space = SearchSpace([BlockSearchInfo(depth=d) for d in depths_list])
    spec = space.sample(rng=seed)
    assert space.contains(spec)
    assert space.decode(space.encode(spec)) == spec
    assert len(space.encode(spec)) == space.encoding_length()


@FAST
@given(depth=st.integers(2, 5), seed=st.integers(0, 1000))
def test_neighbors_differ_in_exactly_one_position(depth, seed):
    space = SearchSpace([BlockSearchInfo(depth=depth)])
    spec = space.sample(rng=seed)
    for neighbor in space.neighbors(spec):
        assert int(np.sum(neighbor.encode() != spec.encode())) == 1


# ---------------------------------------------------------------------------
# MAC / energy invariants
# ---------------------------------------------------------------------------


@FAST
@given(depth=st.integers(1, 5), seed=st.integers(0, 500), channels=st.integers(2, 16))
def test_dsc_never_cheaper_than_asc(depth, seed, channels):
    """For any skip pattern, converting all skips to DSC costs at least as many MACs as ASC."""
    positions = BlockAdjacency(depth).skip_positions()
    rng = np.random.default_rng(seed)
    mask = rng.random(len(positions)) < 0.5
    dsc_block = BlockAdjacency.from_encoding(depth, [DSC if m else 0 for m in mask])
    asc_block = BlockAdjacency.from_encoding(depth, [ASC if m else 0 for m in mask])
    dsc_macs = estimate_block_macs(dsc_block, channels, 8, 8)
    asc_macs = estimate_block_macs(asc_block, channels, 8, 8)
    none_macs = estimate_block_macs(BlockAdjacency(depth), channels, 8, 8)
    assert dsc_macs >= asc_macs == none_macs


@FAST
@given(
    macs=st.floats(1.0, 1e9),
    rate=st.floats(0.0, 1.0),
    steps=st.integers(1, 50),
)
def test_energy_monotone_in_firing_rate_and_steps(macs, rate, steps):
    estimate = estimate_energy(macs, rate, steps)
    assert estimate.ann_energy_nj >= 0 and estimate.snn_energy_nj >= 0
    higher = estimate_energy(macs, min(1.0, rate + 0.1), steps)
    assert higher.snn_energy_nj >= estimate.snn_energy_nj


# ---------------------------------------------------------------------------
# surrogate gradients
# ---------------------------------------------------------------------------


@FAST
@given(
    values=st.lists(st.floats(-10, 10), min_size=1, max_size=20),
    surrogate=st.sampled_from([FastSigmoidSurrogate(), ATanSurrogate(), TriangularSurrogate()]),
)
def test_surrogate_derivatives_nonnegative_bounded_and_peak_at_zero(values, surrogate):
    x = np.asarray(values)
    derivative = surrogate.derivative(x)
    assert np.all(derivative >= 0)
    peak = surrogate.derivative(np.zeros(1))[0]
    assert np.all(derivative <= peak + 1e-12)


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------


@FAST
@given(
    n=st.integers(2, 8),
    d=st.integers(1, 6),
    seed=st.integers(0, 1000),
    kernel=st.sampled_from([RBFKernel(), Matern52Kernel(), HammingKernel()]),
)
def test_kernel_gram_matrices_are_psd_and_symmetric(n, d, seed, kernel):
    x = np.random.default_rng(seed).integers(0, 3, size=(n, d)).astype(float)
    gram = kernel(x, x)
    assert np.allclose(gram, gram.T, atol=1e-10)
    eigenvalues = np.linalg.eigvalsh(gram)
    assert eigenvalues.min() > -1e-8
    assert np.all(gram <= 1.0 + 1e-9)  # unit variance kernels


# ---------------------------------------------------------------------------
# autodiff invariants
# ---------------------------------------------------------------------------


@FAST
@given(
    rows=st.integers(1, 5),
    cols=st.integers(1, 5),
    seed=st.integers(0, 1000),
)
def test_unbroadcast_inverts_broadcast(rows, cols, seed):
    rng = np.random.default_rng(seed)
    grad = rng.normal(size=(rows, cols))
    # broadcasting a (1, cols) array to (rows, cols) and unbroadcasting the gradient
    # must equal summing over the broadcast axis
    reduced = _unbroadcast(grad, (1, cols))
    np.testing.assert_allclose(reduced, grad.sum(axis=0, keepdims=True))


@FAST
@given(
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    seed=st.integers(0, 1000),
)
def test_sum_gradient_is_ones(shape, seed):
    x = Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)
    ops.sum(x).backward()
    np.testing.assert_allclose(x.grad, np.ones(shape))


@FAST
@given(
    seed=st.integers(0, 1000),
    scale=st.floats(0.1, 3.0),
)
def test_softmax_is_probability_distribution(seed, scale):
    x = Tensor(np.random.default_rng(seed).normal(size=(3, 7)) * scale)
    probs = ops.softmax(x, axis=1).data
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(axis=1), np.ones(3), atol=1e-10)
