"""Tests of the network templates (ResNet/DenseNet/MobileNet/single-block)."""

import numpy as np
import pytest

from repro.core.adjacency import ASC, DSC, BlockAdjacency
from repro.core.search_space import ArchitectureSpec
from repro.models import (
    build_densenet121_template,
    build_mobilenetv2_template,
    build_resnet18_template,
    build_single_block_template,
    available_models,
    get_template,
    single_block_sweep_spec,
)
from repro.models.blocks import BlockSpec, LayerSpec
from repro.models.template import NetworkTemplate
from repro.snn import LIFNeuron, TemporalRunner
from repro.tensor import Tensor

ALL_BUILDERS = {
    "resnet18": build_resnet18_template,
    "densenet121": build_densenet121_template,
    "mobilenetv2": build_mobilenetv2_template,
    "single_block": build_single_block_template,
}


class TestRegistry:
    def test_available_models(self):
        assert set(available_models()) == set(ALL_BUILDERS)

    def test_aliases(self):
        assert get_template("resnet", input_channels=2, num_classes=3).name == "resnet18"
        assert get_template("MobileNet-V2", input_channels=2, num_classes=3).name == "mobilenetv2"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_template("vgg16")


class TestTemplateValidation:
    def test_channel_flow_mismatch_rejected(self):
        blocks = [BlockSpec(in_channels=8, layers=[LayerSpec("conv3x3", 8)])]
        with pytest.raises(ValueError):
            NetworkTemplate(
                name="bad",
                input_channels=2,
                num_classes=3,
                stem_channels=4,  # stem produces 4 but the block expects 8
                block_specs=blocks,
                transition_channels=[None],
            )

    def test_mismatched_lengths_rejected(self):
        blocks = [BlockSpec(in_channels=4, layers=[LayerSpec("conv3x3", 4)])]
        with pytest.raises(ValueError):
            NetworkTemplate(
                name="bad",
                input_channels=2,
                num_classes=3,
                stem_channels=4,
                block_specs=blocks,
                transition_channels=[],
            )

    def test_incompatible_architecture_rejected_at_build(self):
        template = build_resnet18_template(input_channels=2, num_classes=3, stage_channels=(4, 4))
        wrong = ArchitectureSpec([BlockAdjacency(4)])  # only one block
        with pytest.raises(ValueError):
            template.build(wrong)


class TestDefaultWiring:
    def test_resnet_default_is_addition_shortcuts(self):
        template = build_resnet18_template(input_channels=2, num_classes=4)
        default = template.default_architecture()
        for block in default.blocks:
            counts = block.count_by_type()
            assert counts[ASC] >= 1 and counts[DSC] == 0

    def test_densenet_default_is_full_concatenation(self):
        template = build_densenet121_template(input_channels=2, num_classes=4, layers_per_stage=4)
        default = template.default_architecture()
        for block in default.blocks:
            assert block.total_skips() == block.max_skips()
            assert block.count_by_type()[ASC] == 0

    def test_mobilenet_default_is_single_residual(self):
        template = build_mobilenetv2_template(input_channels=2, num_classes=4)
        default = template.default_architecture()
        for block in default.blocks:
            assert block.total_skips() == 1
            assert block.count_by_type()[ASC] == 1

    def test_single_block_default_has_no_skips(self):
        template = build_single_block_template(input_channels=2, num_classes=4)
        assert template.default_architecture().total_skips() == 0


class TestSearchSpaces:
    def test_mobilenet_search_space_excludes_dsc_into_depthwise(self):
        template = build_mobilenetv2_template(input_channels=2, num_classes=4)
        space = template.search_space()
        # every admissible sample must avoid DSC into the depthwise layer (destination node 2)
        for seed in range(10):
            spec = space.sample(rng=seed)
            for block in spec.blocks:
                assert block.matrix[0, 2] != DSC

    def test_space_sizes_are_consistent(self):
        for builder in ALL_BUILDERS.values():
            template = builder(input_channels=2, num_classes=4)
            space = template.search_space()
            assert space.size() >= 3
            assert space.encoding_length() == sum(len(i.positions()) for i in space.block_infos)

    def test_default_architecture_is_in_search_space(self):
        for builder in ALL_BUILDERS.values():
            template = builder(input_channels=2, num_classes=4)
            assert template.search_space().contains(template.default_architecture())


class TestBuiltNetworks:
    @pytest.mark.parametrize("name", sorted(ALL_BUILDERS))
    def test_ann_forward_shape(self, rng, name):
        template = get_template(name, input_channels=2, num_classes=5)
        model = template.build(spiking=False, rng=0)
        out = model(Tensor(rng.random((2, 2, 8, 8))))
        assert out.shape == (2, 5)

    @pytest.mark.parametrize("name", sorted(ALL_BUILDERS))
    def test_snn_forward_shape(self, rng, name):
        template = get_template(name, input_channels=2, num_classes=5)
        model = template.build(spiking=True, rng=0)
        out = TemporalRunner(model, num_steps=3)(rng.random((2, 2, 8, 8)))
        assert out.shape == (2, 5)
        assert any(isinstance(m, LIFNeuron) for m in model.modules())

    def test_width_multiplier_scales_parameters(self):
        narrow = build_resnet18_template(input_channels=2, num_classes=4, width_multiplier=0.5).build(rng=0)
        wide = build_resnet18_template(input_channels=2, num_classes=4, width_multiplier=1.0).build(rng=0)
        assert wide.num_parameters() > narrow.num_parameters()

    def test_architecture_spec_recoverable_from_network(self):
        template = build_resnet18_template(input_channels=2, num_classes=4)
        spec = template.search_space().sample(rng=3)
        model = template.build(spec, rng=0)
        assert model.architecture_spec() == spec

    def test_same_seed_same_weights(self):
        template = build_resnet18_template(input_channels=2, num_classes=4)
        a = template.build(rng=5)
        b = template.build(rng=5)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_rgb_input_supported(self, rng):
        template = build_resnet18_template(input_channels=3, num_classes=10)
        model = template.build(rng=0)
        assert model(Tensor(rng.random((1, 3, 8, 8)))).shape == (1, 10)

    def test_densenet_skip_variant_builds_and_runs(self, rng):
        template = build_densenet121_template(input_channels=2, num_classes=4, stage_channels=(4, 6))
        spec = template.search_space().sample(rng=9)
        model = template.build(spec, spiking=True, rng=0)
        out = TemporalRunner(model, num_steps=2)(rng.random((1, 2, 8, 8)))
        assert out.shape == (1, 4)


class TestSingleBlockSweep:
    def test_sweep_spec_nskip_counts(self):
        for n in range(4):
            spec = single_block_sweep_spec(n, "dsc")
            assert spec.blocks[0].num_skips_per_layer() == [0, 0, 0, n]
            assert spec.blocks[0].count_by_type()[DSC] == n

    def test_sweep_spec_asc(self):
        spec = single_block_sweep_spec(2, "asc")
        assert spec.blocks[0].count_by_type()[ASC] == 2

    def test_sweep_spec_aliases_and_validation(self):
        assert single_block_sweep_spec(1, "densenet").blocks[0].count_by_type()[DSC] == 1
        assert single_block_sweep_spec(1, "addition").blocks[0].count_by_type()[ASC] == 1
        with pytest.raises(ValueError):
            single_block_sweep_spec(1, "bogus")

    def test_sweep_spec_clamps_large_nskip(self):
        spec = single_block_sweep_spec(99, "asc")
        assert spec.blocks[0].total_skips() == 3

    def test_sweep_specs_build_and_run(self, rng):
        template = build_single_block_template(input_channels=2, num_classes=4, channels=4)
        for n in (0, 3):
            for kind in ("dsc", "asc"):
                model = template.build(single_block_sweep_spec(n, kind), spiking=True, rng=0)
                out = TemporalRunner(model, num_steps=2)(rng.random((1, 2, 6, 6)))
                assert out.shape == (1, 4)
