"""Unit tests for the differentiable primitives in :mod:`repro.tensor.ops`.

Every op gets (a) a forward-value check against plain NumPy and (b) a
finite-difference gradient check through :func:`repro.tensor.gradcheck`.
"""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck, ops


def _t(rng, shape, scale=1.0):
    return Tensor(rng.normal(size=shape) * scale, requires_grad=True)


# ---------------------------------------------------------------------------
# arithmetic
# ---------------------------------------------------------------------------


class TestArithmetic:
    def test_add_forward(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        out = ops.add(Tensor(a), Tensor(b))
        np.testing.assert_allclose(out.data, a + b)

    def test_add_broadcast_forward(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4,))
        out = ops.add(Tensor(a), Tensor(b))
        np.testing.assert_allclose(out.data, a + b)

    def test_add_gradcheck(self, rng):
        ok, err = gradcheck(ops.add, [_t(rng, (3, 4)), _t(rng, (3, 4))])
        assert ok, err

    def test_add_broadcast_gradcheck(self, rng):
        ok, err = gradcheck(ops.add, [_t(rng, (3, 4)), _t(rng, (4,))])
        assert ok, err

    def test_add_scalar_broadcast_gradcheck(self, rng):
        ok, err = gradcheck(ops.add, [_t(rng, (2, 3)), _t(rng, (1,))])
        assert ok, err

    def test_sub_forward_and_grad(self, rng):
        a, b = _t(rng, (2, 5)), _t(rng, (2, 5))
        out = ops.sub(a, b)
        np.testing.assert_allclose(out.data, a.data - b.data)
        ok, err = gradcheck(ops.sub, [a, b])
        assert ok, err

    def test_mul_gradcheck(self, rng):
        ok, err = gradcheck(ops.mul, [_t(rng, (3, 3)), _t(rng, (3, 3))])
        assert ok, err

    def test_mul_broadcast_gradcheck(self, rng):
        ok, err = gradcheck(ops.mul, [_t(rng, (2, 3, 4)), _t(rng, (3, 1))])
        assert ok, err

    def test_div_gradcheck(self, rng):
        denominator = Tensor(rng.uniform(0.5, 2.0, size=(3, 4)), requires_grad=True)
        ok, err = gradcheck(ops.div, [_t(rng, (3, 4)), denominator])
        assert ok, err

    def test_neg_gradcheck(self, rng):
        ok, err = gradcheck(ops.neg, [_t(rng, (4,))])
        assert ok, err

    def test_power_gradcheck(self, rng):
        base = Tensor(rng.uniform(0.5, 2.0, size=(3, 4)), requires_grad=True)
        ok, err = gradcheck(lambda x: ops.power(x, 3.0), [base])
        assert ok, err

    def test_power_half(self, rng):
        base = Tensor(rng.uniform(0.5, 2.0, size=(5,)), requires_grad=True)
        out = ops.power(base, 0.5)
        np.testing.assert_allclose(out.data, np.sqrt(base.data))

    def test_operator_overloads_match_ops(self, rng):
        a = Tensor(rng.normal(size=(2, 2)))
        b = Tensor(rng.normal(size=(2, 2)))
        np.testing.assert_allclose((a + b).data, ops.add(a, b).data)
        np.testing.assert_allclose((a - b).data, ops.sub(a, b).data)
        np.testing.assert_allclose((a * b).data, ops.mul(a, b).data)
        np.testing.assert_allclose((a / (b + 10.0)).data, ops.div(a, ops.add(b, 10.0)).data)
        np.testing.assert_allclose((-a).data, ops.neg(a).data)
        np.testing.assert_allclose((a ** 2).data, ops.power(a, 2).data)

    def test_scalar_right_operators(self, rng):
        a = Tensor(rng.normal(size=(3,)))
        np.testing.assert_allclose((2.0 + a).data, 2.0 + a.data)
        np.testing.assert_allclose((2.0 - a).data, 2.0 - a.data)
        np.testing.assert_allclose((2.0 * a).data, 2.0 * a.data)
        np.testing.assert_allclose((2.0 / (a + 5.0)).data, 2.0 / (a.data + 5.0))


class TestMatmul:
    def test_matmul_forward(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        out = ops.matmul(Tensor(a), Tensor(b))
        np.testing.assert_allclose(out.data, a @ b)

    def test_matmul_gradcheck(self, rng):
        ok, err = gradcheck(ops.matmul, [_t(rng, (3, 4)), _t(rng, (4, 2))])
        assert ok, err

    def test_batched_matmul_gradcheck(self, rng):
        ok, err = gradcheck(ops.matmul, [_t(rng, (2, 3, 4)), _t(rng, (4, 5))])
        assert ok, err


# ---------------------------------------------------------------------------
# nonlinearities
# ---------------------------------------------------------------------------


class TestNonlinearities:
    @pytest.mark.parametrize(
        "op,reference",
        [
            (ops.exp, np.exp),
            (ops.tanh, np.tanh),
            (ops.relu, lambda x: np.maximum(x, 0)),
        ],
    )
    def test_forward_matches_numpy(self, rng, op, reference):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(op(Tensor(x)).data, reference(x))

    def test_sigmoid_forward(self, rng):
        x = rng.normal(size=(4, 4)) * 3
        expected = 1.0 / (1.0 + np.exp(-x))
        np.testing.assert_allclose(ops.sigmoid(Tensor(x)).data, expected, atol=1e-12)

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor(np.array([-1000.0, 0.0, 1000.0]))
        out = ops.sigmoid(x).data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)

    @pytest.mark.parametrize("op", [ops.exp, ops.tanh, ops.sigmoid])
    def test_gradcheck_smooth(self, rng, op):
        ok, err = gradcheck(op, [_t(rng, (3, 4), scale=0.5)])
        assert ok, err

    def test_log_gradcheck(self, rng):
        x = Tensor(rng.uniform(0.5, 3.0, size=(3, 4)), requires_grad=True)
        ok, err = gradcheck(ops.log, [x])
        assert ok, err

    def test_relu_gradcheck_away_from_kink(self, rng):
        x = Tensor(rng.normal(size=(4, 4)) + np.where(rng.normal(size=(4, 4)) > 0, 0.5, -0.5), requires_grad=True)
        ok, err = gradcheck(ops.relu, [x])
        assert ok, err

    def test_clip_forward_and_grad_mask(self, rng):
        x = Tensor(np.array([-2.0, -0.5, 0.3, 1.7]), requires_grad=True)
        out = ops.clip(x, -1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, -0.5, 0.3, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0, 0.0])

    def test_maximum_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)) + 0.05, requires_grad=True)
        ok, err = gradcheck(ops.maximum, [a, b])
        assert ok, err

    def test_minimum_forward(self, rng):
        a, b = rng.normal(size=(5,)), rng.normal(size=(5,))
        np.testing.assert_allclose(ops.minimum(Tensor(a), Tensor(b)).data, np.minimum(a, b))

    def test_where_selects_by_condition(self, rng):
        cond = np.array([True, False, True])
        a, b = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True), Tensor(np.array([10.0, 20.0, 30.0]), requires_grad=True)
        out = ops.where(cond, a, b)
        np.testing.assert_allclose(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


# ---------------------------------------------------------------------------
# reductions and shape ops
# ---------------------------------------------------------------------------


class TestReductions:
    def test_sum_all(self, rng):
        x = rng.normal(size=(3, 4))
        assert np.isclose(ops.sum(Tensor(x)).item(), x.sum())

    def test_sum_axis_keepdims(self, rng):
        x = rng.normal(size=(3, 4, 5))
        out = ops.sum(Tensor(x), axis=1, keepdims=True)
        np.testing.assert_allclose(out.data, x.sum(axis=1, keepdims=True))

    def test_sum_axis_tuple_gradcheck(self, rng):
        ok, err = gradcheck(lambda x: ops.sum(x, axis=(0, 2)), [_t(rng, (2, 3, 4))])
        assert ok, err

    def test_mean_axis_gradcheck(self, rng):
        ok, err = gradcheck(lambda x: ops.mean(x, axis=1), [_t(rng, (3, 5))])
        assert ok, err

    def test_mean_all_value(self, rng):
        x = rng.normal(size=(4, 4))
        assert np.isclose(ops.mean(Tensor(x)).item(), x.mean())

    def test_max_axis_forward(self, rng):
        x = rng.normal(size=(3, 6))
        np.testing.assert_allclose(ops.max(Tensor(x), axis=1).data, x.max(axis=1))

    def test_max_gradient_routes_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        ops.max(x, axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_global_gradcheck(self, rng):
        ok, err = gradcheck(lambda x: ops.max(x), [_t(rng, (3, 4))])
        assert ok, err


class TestShapeOps:
    def test_reshape_roundtrip_gradcheck(self, rng):
        ok, err = gradcheck(lambda x: ops.reshape(x, (6, 2)), [_t(rng, (3, 4))])
        assert ok, err

    def test_reshape_infer_dimension(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        assert ops.reshape(x, (2, -1)).shape == (2, 12)

    def test_transpose_default_reverses(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        assert ops.transpose(x).shape == (4, 3, 2)

    def test_transpose_axes_gradcheck(self, rng):
        ok, err = gradcheck(lambda x: ops.transpose(x, (1, 0, 2)), [_t(rng, (2, 3, 4))])
        assert ok, err

    def test_broadcast_to_gradcheck(self, rng):
        ok, err = gradcheck(lambda x: ops.broadcast_to(x, (4, 3)), [_t(rng, (1, 3))])
        assert ok, err

    def test_concat_forward(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 5))
        out = ops.concat([Tensor(a), Tensor(b)], axis=1)
        np.testing.assert_allclose(out.data, np.concatenate([a, b], axis=1))

    def test_concat_gradcheck_three_inputs(self, rng):
        ok, err = gradcheck(
            lambda a, b, c: ops.concat([a, b, c], axis=1),
            [_t(rng, (2, 2)), _t(rng, (2, 3)), _t(rng, (2, 1))],
        )
        assert ok, err

    def test_concat_channel_axis_like_dsc(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 5, 4, 4)), requires_grad=True)
        out = ops.concat([a, b], axis=1)
        assert out.shape == (2, 8, 4, 4)
        out.sum().backward()
        assert a.grad.shape == a.shape and b.grad.shape == b.shape

    def test_stack_forward_and_grad(self, rng):
        ok, err = gradcheck(lambda a, b: ops.stack([a, b], axis=0), [_t(rng, (2, 3)), _t(rng, (2, 3))])
        assert ok, err

    def test_getitem_slice_gradcheck(self, rng):
        ok, err = gradcheck(lambda x: ops.getitem(x, (slice(None), slice(0, 2))), [_t(rng, (3, 4))])
        assert ok, err

    def test_getitem_integer_index_accumulates(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        out = x[np.array([0, 0, 2])]
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0, 0.0])

    def test_pad2d_shape_and_grad(self, rng):
        x = _t(rng, (1, 2, 3, 3))
        out = ops.pad2d(x, 2)
        assert out.shape == (1, 2, 7, 7)
        ok, err = gradcheck(lambda x: ops.pad2d(x, 1), [x])
        assert ok, err

    def test_pad2d_zero_padding_is_identity(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 3, 3)))
        assert ops.pad2d(x, 0) is x


# ---------------------------------------------------------------------------
# composite ops
# ---------------------------------------------------------------------------


class TestComposite:
    def test_softmax_rows_sum_to_one(self, rng):
        out = ops.softmax(Tensor(rng.normal(size=(4, 7))), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4), atol=1e-12)

    def test_softmax_gradcheck(self, rng):
        ok, err = gradcheck(lambda x: ops.softmax(x, axis=1), [_t(rng, (3, 5))])
        assert ok, err

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(3, 6))
        np.testing.assert_allclose(
            ops.log_softmax(Tensor(x), axis=1).data,
            np.log(ops.softmax(Tensor(x), axis=1).data),
            atol=1e-10,
        )

    def test_log_softmax_gradcheck(self, rng):
        ok, err = gradcheck(lambda x: ops.log_softmax(x, axis=1), [_t(rng, (4, 5))])
        assert ok, err

    def test_log_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(2, 5))
        a = ops.log_softmax(Tensor(x), axis=1).data
        b = ops.log_softmax(Tensor(x + 100.0), axis=1).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_dropout_identity_when_p_zero(self, rng):
        x = Tensor(rng.normal(size=(5, 5)), requires_grad=True)
        assert ops.dropout_mask(x, 0.0, rng) is x

    def test_dropout_preserves_expectation(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = ops.dropout_mask(x, 0.5, np.random.default_rng(0))
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_dropout_grad_uses_same_mask(self):
        x = Tensor(np.ones((50, 50)), requires_grad=True)
        out = ops.dropout_mask(x, 0.5, np.random.default_rng(1))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, out.data)
