"""Tests for repro-lint (tools/analyze): every rule, suppressions, baseline.

Each rule gets at least one fixture with a true positive and one clean
negative, written so deleting the rule's implementation makes the test fail.
Fixtures are written to tmp_path and analyzed with ``--no-baseline``
semantics (``baseline_path=None``); the mechanics tests then exercise the
suppression-reason requirement and the shrink-only baseline, and the
acceptance test runs the analyzer over the real repository.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))

from tools.analyze.core import all_rules, run_analysis, write_baseline  # after the sys.path insert above


def lint(tmp_path: Path, sources: dict, **kwargs):
    """Write ``sources`` under ``tmp_path`` and analyze them."""
    for name, text in sources.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text), encoding="utf-8")
    kwargs.setdefault("baseline_path", None)
    return run_analysis([tmp_path], root=tmp_path, **kwargs)


def rules_of(report):
    return [finding.rule for finding in report.findings]


# ---------------------------------------------------------------------------
# rule: spawn-safety
# ---------------------------------------------------------------------------

class TestSpawnSafety:
    def test_lambda_and_nested_def_are_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "bad.py": """
                def run(items):
                    square = lambda x: x * x
                    first = parallel_map(square, items)
                    second = parallel_map(lambda x: x + 1, items)

                    def inner(x):
                        return x

                    third = evaluate_ordered(objective=inner, encodings=items)
                    return first, second, third
                """
            },
        )
        spawn = [f for f in report.findings if f.rule == "spawn-safety"]
        assert len(spawn) == 3
        assert any("lambda" in f.message for f in spawn)
        assert any("nested def 'inner'" in f.message for f in spawn)

    def test_module_level_function_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "good.py": """
                def work(x):
                    return x * x

                def run(items):
                    return parallel_map(work, items)
                """
            },
        )
        assert "spawn-safety" not in rules_of(report)


# ---------------------------------------------------------------------------
# rule: lock-discipline
# ---------------------------------------------------------------------------

class TestLockDiscipline:
    FIXTURE_BAD = """
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def bump(self):
            with self._lock:
                self.count += 1

        def peek(self):
            return self.count

        def reset(self):
            self.count = 0

        def bad_bump(self):
            self.count += 1
    """

    def test_bare_read_write_and_augassign_are_flagged(self, tmp_path):
        report = lint(tmp_path, {"bad.py": self.FIXTURE_BAD})
        lock = [f for f in report.findings if f.rule == "lock-discipline"]
        messages = " | ".join(f.message for f in lock)
        assert "read here without the lock" in messages
        assert "written here without the lock" in messages
        assert "augmented assignment is not atomic" in messages

    def test_fully_locked_class_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "good.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def bump(self):
                        with self._lock:
                            self.count += 1

                    def peek(self):
                        with self._lock:
                            return self.count
                """
            },
        )
        assert "lock-discipline" not in rules_of(report)

    def test_lockless_class_is_out_of_scope(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "single.py": """
                class Accumulator:
                    def __init__(self):
                        self.total = 0

                    def add(self, value):
                        self.total += value
                """
            },
        )
        assert "lock-discipline" not in rules_of(report)


# ---------------------------------------------------------------------------
# rule: buffer-escape
# ---------------------------------------------------------------------------

class TestBufferEscape:
    def test_returning_pooled_buffer_is_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "bad.py": """
                def compute(pool, shape):
                    out = pool.get_workspace(shape)
                    view = out.reshape(-1)
                    return view
                """
            },
        )
        escapes = [f for f in report.findings if f.rule == "buffer-escape"]
        assert len(escapes) == 1
        assert "'view'" in escapes[0].message

    def test_copy_detaches_and_providers_are_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "good.py": """
                def get_workspace(pool, shape):
                    buf = pool.acquire_buffer(shape)
                    return buf  # providers hand out scratch by design

                def compute(pool, shape):
                    out = pool.get_workspace(shape)
                    return out.copy()

                def compute_fresh(pool, shape):
                    out = pool.get_workspace(shape)
                    result = out + 1  # arithmetic allocates a fresh array
                    return result
                """
            },
        )
        assert "buffer-escape" not in rules_of(report)

    def test_helper_call_arguments_are_not_escapes(self, tmp_path):
        # passing a buffer to a helper is the helper's responsibility, not
        # an escape at the call site (the neuron fast path's exact shape)
        report = lint(
            tmp_path,
            {
                "calls.py": """
                def compute(pool, shape):
                    mem = pool.get_workspace(shape)
                    scratch = pool.get_workspace(shape)
                    return finalize(mem, scratch)
                """
            },
        )
        assert "buffer-escape" not in rules_of(report)

    def test_pooled_index_list_through_attach_events_is_flagged(self, tmp_path):
        # PR 8: attach_events pins the index array to a tensor consumed on a
        # later step, so a pooled index buffer escapes through it
        report = lint(
            tmp_path,
            {
                "sparse_bad.py": """
                def emit(pool, spikes, out):
                    events = pool.get_workspace(spikes.size)
                    return attach_events(out, events)
                """
            },
        )
        escapes = [f for f in report.findings if f.rule == "buffer-escape"]
        assert len(escapes) == 1
        assert "'events'" in escapes[0].message

    def test_fresh_or_copied_index_list_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "sparse_good.py": """
                import numpy as np

                def emit_fresh(spikes, out):
                    events = np.flatnonzero(spikes)  # owning array, no pool
                    return attach_events(out, events)

                def emit_copied(pool, spikes, out):
                    events = pool.get_workspace(spikes.size)
                    return attach_events(out, events.copy())
                """
            },
        )
        assert "buffer-escape" not in rules_of(report)


# ---------------------------------------------------------------------------
# rule: metrics-hygiene
# ---------------------------------------------------------------------------

class TestMetricsHygiene:
    def test_registration_in_request_path_is_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "bad.py": """
                class Handler:
                    def handle(self, registry):
                        counter = registry.counter("requests_total", "requests")
                        counter.inc()
                """
            },
        )
        metrics = [f for f in report.findings if f.rule == "metrics-hygiene"]
        assert len(metrics) == 1
        assert "move registration" in metrics[0].message

    def test_dynamic_name_and_labels_are_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "dynamic.py": """
                KIND = "http"
                COUNTER = registry.counter(f"requests_{KIND}", "requests")
                GAUGE = registry.gauge("rows", "rows", labelnames=make_labels())
                """
            },
        )
        metrics = [f for f in report.findings if f.rule == "metrics-hygiene"]
        assert len(metrics) == 2
        messages = " | ".join(f.message for f in metrics)
        assert "string literal" in messages
        assert "literal tuple/list" in messages

    def test_module_scope_and_init_registration_are_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "good.py": """
                COUNTER = registry.counter("requests_total", "requests", labelnames=("method",))

                class Server:
                    def __init__(self, registry):
                        self.rows = registry.gauge("store_rows", "rows in the store")
                """
            },
        )
        assert "metrics-hygiene" not in rules_of(report)

    def test_span_hygiene_flags_dynamic_names_and_bare_opens(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "bad_spans.py": """
                def evaluate(name, trace):
                    with span(f"evaluate.{name}"):
                        pass
                    dangling = trace.span("dangling")
                    return dangling
                """
            },
        )
        metrics = [f for f in report.findings if f.rule == "metrics-hygiene"]
        assert len(metrics) == 2
        messages = " | ".join(f.message for f in metrics)
        assert "span name must be a string literal" in messages
        assert "outside a with block" in messages

    def test_span_in_with_block_with_literal_name_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "good_spans.py": """
                def evaluate(arch):
                    with span("evaluate", arch=arch) as current:
                        if current:
                            current.set(accuracy=1.0)
                    with ops_span("op.conv2d", patches=4):
                        pass
                """
            },
        )
        assert "metrics-hygiene" not in rules_of(report)


# ---------------------------------------------------------------------------
# rule: store-schema-drift
# ---------------------------------------------------------------------------

class TestStoreSchemaDrift:
    def test_written_but_never_read_key_is_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "writer.py": """
                def result_to_row(result):
                    return {"objective": result.value, "orphan": 1}
                """,
                "reader.py": """
                def row_to_result(row):
                    return row.get("objective", 0.0)
                """,
            },
        )
        drift = [f for f in report.findings if f.rule == "store-schema-drift"]
        assert len(drift) == 1
        assert "'orphan'" in drift[0].message
        assert drift[0].path == "writer.py"

    def test_all_keys_read_is_clean_and_extra_reads_are_allowed(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "writer.py": """
                def result_to_row(result):
                    return {"objective": result.value}
                """,
                "reader.py": """
                def row_to_result(row):
                    legacy = row.get("old_field", None)  # reading unwritten keys is fine
                    return row["objective"], legacy
                """,
            },
        )
        assert "store-schema-drift" not in rules_of(report)

    def test_rule_is_silent_without_both_sides(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "writer_only.py": """
                def result_to_row(result):
                    return {"objective": result.value}
                """
            },
        )
        assert "store-schema-drift" not in rules_of(report)


# ---------------------------------------------------------------------------
# rule: primitive-coverage
# ---------------------------------------------------------------------------

class TestPrimitiveCoverage:
    def test_primitive_without_vjp_is_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "bad.py": """
                from repro.tensor.primitives import Primitive, register

                def _gelu_fwd(a, want_ctx=False):
                    return a, None

                def _gelu_jvp(ctx, tangents):
                    return tangents[0]

                GELU = register(Primitive("gelu", forward=_gelu_fwd, jvp=_gelu_jvp))
                BAD = Primitive("bad", forward=_gelu_fwd, vjp=None, jvp=_gelu_jvp)
                """
            },
        )
        findings = [f for f in report.findings if f.rule == "primitive-coverage"]
        assert len(findings) == 2
        assert "'gelu'" in findings[0].message and "without a vjp" in findings[0].message
        assert "'bad'" in findings[1].message and "vjp=None" in findings[1].message

    def test_write_only_residual_stash_is_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "kernel.py": """
                class BrokenKernel:
                    def forward(self, t, x):
                        buf = self.stash("xc", x.shape)
                        buf[t] = x
                        return x * 2.0

                    def adjoint(self, g):
                        return g * 2.0  # never reads the stashed residual back
                """
            },
        )
        findings = [f for f in report.findings if f.rule == "primitive-coverage"]
        assert len(findings) == 1
        assert "BrokenKernel" in findings[0].message
        assert "write-only" in findings[0].message

    def test_declared_vjp_and_consumed_residuals_are_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "good.py": """
                from repro.tensor.primitives import Primitive

                def _relu_fwd(a, want_ctx=False):
                    return a, a

                def _relu_vjp(ctx, g, needs):
                    return (g * (ctx > 0),)

                def _relu_jvp(ctx, tangents):
                    return tangents[0]

                RELU = Primitive("relu", forward=_relu_fwd, vjp=_relu_vjp, jvp=_relu_jvp)

                class FusedKernel:
                    def forward(self, t, x):
                        buf = self.stash("xc", x.shape)
                        buf[t] = x
                        return x * 2.0

                    def adjoint(self, t, g):
                        return g * self.stashed("xc", t)
                """
            },
        )
        assert "primitive-coverage" not in rules_of(report)

    def test_kwargs_construction_and_stashless_classes_are_out_of_scope(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "opaque.py": """
                from repro.tensor.primitives import Primitive

                def build(**spec):
                    return Primitive("dynamic", **spec)

                class NoResiduals:
                    def forward(self, x):
                        return x + 1.0
                """
            },
        )
        assert "primitive-coverage" not in rules_of(report)


# ---------------------------------------------------------------------------
# rule: swallowed-exception
# ---------------------------------------------------------------------------

class TestSwallowedException:
    def test_silent_broad_handler_is_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "bad.py": """
                def probe(func):
                    try:
                        func()
                    except Exception:
                        pass
                """
            },
        )
        assert rules_of(report) == ["swallowed-exception"]

    def test_referencing_or_reraising_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "good.py": """
                def probe(func, log):
                    try:
                        func()
                    except Exception as error:
                        log(error)

                def strict(func):
                    try:
                        func()
                    except Exception:
                        raise RuntimeError("probe failed") from None

                def narrow(func):
                    try:
                        func()
                    except ValueError:
                        pass
                """
            },
        )
        assert "swallowed-exception" not in rules_of(report)


# ---------------------------------------------------------------------------
# suppression mechanics
# ---------------------------------------------------------------------------

class TestSuppressions:
    BAD_BODY = """
    def probe(func):
        try:
            func()
        except Exception:{comment}
            pass
    """

    def test_suppression_with_reason_silences_and_is_reported(self, tmp_path):
        source = self.BAD_BODY.format(
            comment="  # repro-lint: disable=swallowed-exception (probe result is the only output)"
        )
        report = lint(tmp_path, {"fixture.py": source})
        assert report.findings == []
        assert len(report.suppressed) == 1
        finding, suppression = report.suppressed[0]
        assert finding.rule == "swallowed-exception"
        assert suppression.reason == "probe result is the only output"
        assert report.exit_code == 0

    def test_suppression_without_reason_fails(self, tmp_path):
        source = self.BAD_BODY.format(comment="  # repro-lint: disable=swallowed-exception")
        report = lint(tmp_path, {"fixture.py": source})
        # the lazy suppression silences nothing AND is itself a finding
        assert sorted(rules_of(report)) == ["bad-suppression", "swallowed-exception"]
        assert report.exit_code == 1

    def test_suppression_only_covers_named_rules(self, tmp_path):
        source = self.BAD_BODY.format(
            comment="  # repro-lint: disable=buffer-escape (wrong rule named)"
        )
        report = lint(tmp_path, {"fixture.py": source})
        assert rules_of(report) == ["swallowed-exception"]

    def test_standalone_comment_covers_next_line(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "fixture.py": """
                def probe(func):
                    try:
                        func()
                    # repro-lint: disable=swallowed-exception (fallback is the contract)
                    except Exception:
                        pass
                """
            },
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# baseline mechanics
# ---------------------------------------------------------------------------

class TestBaseline:
    DIRTY = {
        "dirty.py": """
        def probe(func):
            try:
                func()
            except Exception:
                pass
        """
    }

    def test_baselined_finding_passes_and_is_reported(self, tmp_path):
        first = lint(tmp_path, dict(self.DIRTY))
        assert first.exit_code == 1
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, first.findings)
        second = run_analysis([tmp_path], root=tmp_path, baseline_path=baseline)
        assert second.findings == []
        assert [f.rule for f in second.baselined] == ["swallowed-exception"]
        assert second.exit_code == 0

    def test_stale_baseline_entry_fails(self, tmp_path):
        first = lint(tmp_path, dict(self.DIRTY))
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, first.findings)
        # fix the code: the baseline entry is now stale and must fail the run
        (tmp_path / "dirty.py").write_text(
            textwrap.dedent(
                """
                def probe(func, log):
                    try:
                        func()
                    except Exception as error:
                        log(error)
                """
            ),
            encoding="utf-8",
        )
        report = run_analysis([tmp_path], root=tmp_path, baseline_path=baseline)
        assert report.findings == []
        assert len(report.stale_baseline) == 1
        assert report.exit_code == 1

    def test_update_baseline_rewrites_to_reality(self, tmp_path):
        lint(tmp_path, dict(self.DIRTY))
        baseline = tmp_path / "baseline.json"
        report = run_analysis(
            [tmp_path], root=tmp_path, baseline_path=baseline, update_baseline=True
        )
        assert report.exit_code == 0
        payload = json.loads(baseline.read_text())
        assert [entry["rule"] for entry in payload["findings"]] == ["swallowed-exception"]

    def test_fingerprints_ignore_line_numbers(self, tmp_path):
        first = lint(tmp_path, dict(self.DIRTY))
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, first.findings)
        # prepend code: every finding moves, but fingerprints must still match
        moved = "HEADER = 1\n\n\n" + (tmp_path / "dirty.py").read_text()
        (tmp_path / "dirty.py").write_text(moved, encoding="utf-8")
        report = run_analysis([tmp_path], root=tmp_path, baseline_path=baseline)
        assert report.findings == []
        assert report.stale_baseline == []
        assert report.exit_code == 0


# ---------------------------------------------------------------------------
# engine odds and ends
# ---------------------------------------------------------------------------

class TestEngine:
    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        report = lint(tmp_path, {"broken.py": "def f(:\n    pass\n"})
        assert rules_of(report) == ["parse-error"]
        assert report.exit_code == 1

    def test_select_and_ignore_narrow_the_rule_set(self, tmp_path):
        sources = {
            "mixed.py": """
            def probe(func, items):
                try:
                    func()
                except Exception:
                    pass
                return parallel_map(lambda x: x, items)
            """
        }
        only_spawn = lint(tmp_path, dict(sources), select=["spawn-safety"])
        assert rules_of(only_spawn) == ["spawn-safety"]
        without_spawn = lint(tmp_path, dict(sources), ignore=["spawn-safety"])
        assert rules_of(without_spawn) == ["swallowed-exception"]

    def test_unknown_rule_selection_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule"):
            lint(tmp_path, {"empty.py": ""}, select=["no-such-rule"])

    def test_registry_has_the_documented_rules(self):
        names = set(all_rules())
        assert {
            "spawn-safety",
            "lock-discipline",
            "buffer-escape",
            "metrics-hygiene",
            "store-schema-drift",
            "swallowed-exception",
        } <= names


# ---------------------------------------------------------------------------
# acceptance: the real repository is clean
# ---------------------------------------------------------------------------

class TestRepositoryIsClean:
    def test_repo_passes_with_empty_baseline(self):
        baseline = ROOT / "tools" / "analyze" / "baseline.json"
        assert json.loads(baseline.read_text())["findings"] == []
        report = run_analysis(
            [ROOT / "src", ROOT / "tools", ROOT / "benchmarks", ROOT / "examples"],
            root=ROOT,
            baseline_path=baseline,
        )
        assert report.findings == []
        assert report.stale_baseline == []
        assert report.exit_code == 0
        # the intentional aliasing/fallback sites stay enumerable
        assert len(report.suppressed) >= 3


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

class TestEntryPoints:
    def test_python_m_tools_analyze_json_output(self, tmp_path):
        fixture = tmp_path / "fixture.py"
        fixture.write_text(
            "def probe(func):\n    try:\n        func()\n    except Exception:\n        pass\n",
            encoding="utf-8",
        )
        output = tmp_path / "report.json"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "tools.analyze",
                str(tmp_path),
                "--no-baseline",
                "--format",
                "json",
                "--output",
                str(output),
                "--root",
                str(tmp_path),
            ],
            cwd=ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert [f["rule"] for f in payload["findings"]] == ["swallowed-exception"]
        assert payload["exit_code"] == 1
        archived = json.loads(output.read_text())
        assert archived["findings"] == payload["findings"]

    def test_repro_lint_subcommand_lists_rules(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(ROOT)
        assert main(["lint", "--", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "lock-discipline" in out
        assert "buffer-escape" in out
