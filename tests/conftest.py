"""Shared fixtures for the test-suite.

Everything is kept tiny (a handful of samples, 8-10 pixel images, few time
steps) so the whole suite runs in a couple of minutes on one CPU core while
still exercising every code path end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adjacency import ASC, DSC, BlockAdjacency
from repro.core.search_space import ArchitectureSpec
from repro.data import load_dataset
from repro.data.loaders import ArrayDataset, DatasetSplits, train_val_test_split
from repro.models import build_single_block_template, get_template


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator shared by tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_static_splits() -> DatasetSplits:
    """A very small synthetic CIFAR-10-like dataset (static images)."""
    return load_dataset("cifar10", num_samples=60, image_size=8, seed=0)


@pytest.fixture(scope="session")
def tiny_dvs_splits() -> DatasetSplits:
    """A very small synthetic CIFAR-10-DVS-like dataset (event frames)."""
    return load_dataset("cifar10-dvs", num_samples=60, image_size=8, num_steps=4, seed=0)


@pytest.fixture(scope="session")
def tiny_gesture_splits() -> DatasetSplits:
    """A very small synthetic DVS128-Gesture-like dataset."""
    return load_dataset("dvs128-gesture", num_samples=44, image_size=8, num_steps=4, seed=0)


@pytest.fixture
def two_class_images() -> ArrayDataset:
    """A linearly separable 2-class image toy problem (bright top vs bottom)."""
    rng = np.random.default_rng(7)
    n = 32
    images = rng.random((n, 1, 8, 8)) * 0.1
    labels = np.arange(n) % 2
    for i, cls in enumerate(labels):
        if cls == 0:
            images[i, 0, :4, :] += 0.9
        else:
            images[i, 0, 4:, :] += 0.9
    return ArrayDataset(np.clip(images, 0, 1), labels, num_classes=2)


@pytest.fixture
def two_class_splits(two_class_images) -> DatasetSplits:
    """Train/val/test splits of the 2-class toy problem."""
    return train_val_test_split(two_class_images, val_fraction=0.2, test_fraction=0.2, rng=3, name="toy2")


@pytest.fixture
def single_block_template():
    """Single-block template matching the tiny DVS dataset (2 channels, 10 classes)."""
    return build_single_block_template(input_channels=2, num_classes=10, channels=4)


@pytest.fixture
def tiny_resnet_template():
    """Very small ResNet-18-style template matching the tiny DVS dataset."""
    return get_template("resnet18", input_channels=2, num_classes=10, stage_channels=(4, 6))


@pytest.fixture
def example_spec(single_block_template) -> ArchitectureSpec:
    """An architecture spec with one DSC and one ASC connection."""
    adjacency = BlockAdjacency(4)
    adjacency.matrix[0, 2] = DSC
    adjacency.matrix[1, 4] = ASC
    return ArchitectureSpec([adjacency], name="example")
