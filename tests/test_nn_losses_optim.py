"""Tests of losses, metrics, optimizers and LR schedulers."""

import numpy as np
import pytest

from repro.nn import Adam, CrossEntropyLoss, Linear, MSELoss, SGD, Sequential, ReLU
from repro.nn.losses import accuracy, confusion_matrix
from repro.nn.module import Parameter
from repro.nn.optim import Optimizer
from repro.nn.scheduler import ConstantLR, CosineAnnealingLR, StepLR
from repro.tensor import Tensor


class TestCrossEntropy:
    def test_uniform_logits_give_log_num_classes(self):
        loss_fn = CrossEntropyLoss()
        logits = Tensor(np.zeros((4, 5)), requires_grad=True)
        loss = loss_fn(logits, np.array([0, 1, 2, 3]))
        assert np.isclose(loss.item(), np.log(5))

    def test_perfect_prediction_low_loss(self):
        loss_fn = CrossEntropyLoss()
        logits = np.full((3, 4), -20.0)
        targets = np.array([0, 1, 2])
        logits[np.arange(3), targets] = 20.0
        loss = loss_fn(Tensor(logits, requires_grad=True), targets)
        assert loss.item() < 1e-6

    def test_gradient_matches_softmax_minus_onehot(self):
        loss_fn = CrossEntropyLoss()
        logits = Tensor(np.random.default_rng(0).normal(size=(2, 3)), requires_grad=True)
        targets = np.array([1, 2])
        loss = loss_fn(logits, targets)
        loss.backward()
        softmax = np.exp(logits.data) / np.exp(logits.data).sum(axis=1, keepdims=True)
        one_hot = np.zeros((2, 3))
        one_hot[np.arange(2), targets] = 1
        np.testing.assert_allclose(logits.grad, (softmax - one_hot) / 2, atol=1e-10)

    def test_label_smoothing_raises_min_loss(self):
        smooth = CrossEntropyLoss(label_smoothing=0.2)
        sharp = CrossEntropyLoss()
        logits = np.full((2, 4), -20.0)
        targets = np.array([0, 1])
        logits[np.arange(2), targets] = 20.0
        assert smooth(Tensor(logits), targets).item() > sharp(Tensor(logits), targets).item()

    def test_shape_mismatch_raises(self):
        loss_fn = CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss_fn(Tensor(np.zeros((3, 2))), np.array([0, 1]))

    def test_invalid_smoothing_raises(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.0)


class TestMSEAndMetrics:
    def test_mse_value(self):
        loss = MSELoss()(Tensor(np.array([1.0, 2.0])), np.array([0.0, 0.0]))
        assert np.isclose(loss.item(), 2.5)

    def test_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 1.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_with_tensor_input(self):
        logits = Tensor(np.array([[1.0, 0.0]]))
        assert accuracy(logits, np.array([0])) == 1.0

    def test_confusion_matrix(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 1.0]])
        matrix = confusion_matrix(logits, np.array([0, 1, 1]), num_classes=2)
        np.testing.assert_array_equal(matrix, [[1, 0], [1, 1]])


def _quadratic_problem():
    """Simple convex problem: minimise ||w - target||^2."""
    target = np.array([1.0, -2.0, 3.0])
    w = Parameter(np.zeros(3))

    def loss_fn():
        diff = w - Tensor(target)
        return (diff * diff).sum()

    return w, target, loss_fn


class TestSGD:
    def test_converges_on_quadratic(self):
        w, target, loss_fn = _quadratic_problem()
        opt = SGD([w], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss_fn().backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-3)

    def test_momentum_converges_faster_than_plain(self):
        losses = {}
        for momentum in (0.0, 0.9):
            w, target, loss_fn = _quadratic_problem()
            opt = SGD([w], lr=0.02, momentum=momentum)
            for _ in range(40):
                opt.zero_grad()
                loss_fn().backward()
                opt.step()
            losses[momentum] = float(((w.data - target) ** 2).sum())
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks_weights(self):
        w = Parameter(np.array([10.0]))
        opt = SGD([w], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (w * 0.0).sum().backward()  # zero data gradient
        opt.step()
        assert w.data[0] < 10.0

    def test_invalid_momentum_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)

    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_grad_clipping_bounds_norm(self):
        w = Parameter(np.array([1.0, 1.0]))
        opt = SGD([w], lr=0.1)
        opt.zero_grad()
        (w * 100.0).sum().backward()
        norm = opt.clip_grad_norm(1.0)
        assert norm > 1.0
        assert np.sqrt((w.grad ** 2).sum()) <= 1.0 + 1e-9


class TestAdam:
    def test_converges_on_quadratic(self):
        w, target, loss_fn = _quadratic_problem()
        opt = Adam([w], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            loss_fn().backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-2)

    def test_invalid_betas_raise(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.2, 0.9))

    def test_trains_small_classifier(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        x = rng.normal(size=(20, 4))
        y = (x[:, 0] > 0).astype(int)
        loss_fn = CrossEntropyLoss()
        opt = Adam(model.parameters(), lr=0.05)
        for _ in range(60):
            opt.zero_grad()
            loss = loss_fn(model(Tensor(x)), y)
            loss.backward()
            opt.step()
        assert accuracy(model(Tensor(x)), y) >= 0.9


class TestSchedulers:
    def _optimizer(self, lr=1.0):
        return SGD([Parameter(np.zeros(1))], lr=lr)

    def test_constant(self):
        sched = ConstantLR(self._optimizer(0.5))
        for _ in range(5):
            assert sched.step() == 0.5

    def test_step_lr(self):
        sched = StepLR(self._optimizer(1.0), step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_cosine_endpoints(self):
        opt = self._optimizer(1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        values = [sched.step() for _ in range(10)]
        assert values[0] < 1.0
        assert np.isclose(values[-1], 0.0, atol=1e-12)
        assert all(values[i] >= values[i + 1] for i in range(9))

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(self._optimizer(), step_size=0)

    def test_scheduler_updates_optimizer(self):
        opt = self._optimizer(1.0)
        sched = StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        assert opt.lr == 0.5
