"""Tests of the search space over per-block adjacency matrices."""

import numpy as np
import pytest

from repro.core.adjacency import ASC, DSC, NO_CONNECTION, BlockAdjacency
from repro.core.search_space import ArchitectureSpec, BlockSearchInfo, SearchSpace


def _space(depths=(4, 3)):
    return SearchSpace([BlockSearchInfo(depth=d, name=f"block{i}") for i, d in enumerate(depths)])


class TestBlockSearchInfo:
    def test_positions_and_choices(self):
        info = BlockSearchInfo(depth=4)
        assert len(info.positions()) == 6
        assert info.num_choices() == 3 ** 6

    def test_restricted_positions(self):
        info = BlockSearchInfo(depth=3, allowed_types={(0, 2): (NO_CONNECTION, ASC)})
        assert info.allowed_at((0, 2)) == (NO_CONNECTION, ASC)
        assert info.allowed_at((0, 3)) == (NO_CONNECTION, DSC, ASC)
        assert info.num_choices() == 2 * 3 * 3


class TestArchitectureSpec:
    def test_encode_concatenates_blocks(self):
        spec = ArchitectureSpec([BlockAdjacency(4), BlockAdjacency(3)])
        assert spec.encode().shape == (9,)

    def test_total_and_typed_counts(self):
        a = BlockAdjacency(4).with_connection(0, 2, DSC)
        b = BlockAdjacency(3).with_connection(0, 2, ASC)
        spec = ArchitectureSpec([a, b])
        assert spec.total_skips() == 2
        assert spec.count_by_type() == {DSC: 1, ASC: 1}

    def test_equality_and_hash(self):
        a = ArchitectureSpec([BlockAdjacency(3).with_connection(0, 2, DSC)])
        b = ArchitectureSpec([BlockAdjacency(3).with_connection(0, 2, DSC)])
        assert a == b and hash(a) == hash(b)

    def test_blocks_are_copied(self):
        block = BlockAdjacency(3)
        spec = ArchitectureSpec([block])
        block.matrix[0, 2] = DSC
        assert spec.total_skips() == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ArchitectureSpec([])


class TestSearchSpace:
    def test_size_and_dim(self):
        space = _space((4, 3))
        assert space.encoding_length() == 9
        assert space.size() == 3 ** 9

    def test_default_spec_is_skipless(self):
        assert _space().default_spec().total_skips() == 0

    def test_encode_decode_roundtrip(self):
        space = _space((4, 3))
        spec = space.sample(rng=0)
        decoded = space.decode(space.encode(spec))
        assert decoded == spec

    def test_decode_validates_length(self):
        with pytest.raises(ValueError):
            _space((4, 3)).decode(np.zeros(5))

    def test_check_spec_depth_mismatch(self):
        space = _space((4,))
        bad = ArchitectureSpec([BlockAdjacency(3)])
        assert not space.contains(bad)

    def test_check_spec_disallowed_code(self):
        info = BlockSearchInfo(depth=3, allowed_types={(0, 2): (NO_CONNECTION, ASC)})
        space = SearchSpace([info])
        bad = ArchitectureSpec([BlockAdjacency(3).with_connection(0, 2, DSC)])
        assert not space.contains(bad)
        good = ArchitectureSpec([BlockAdjacency(3).with_connection(0, 2, ASC)])
        assert space.contains(good)

    def test_sampling_is_admissible_and_reproducible(self):
        space = SearchSpace([BlockSearchInfo(depth=3, allowed_types={(0, 2): (NO_CONNECTION, ASC)})])
        for seed in range(5):
            assert space.contains(space.sample(rng=seed))
        np.testing.assert_array_equal(space.sample(rng=7).encode(), space.sample(rng=7).encode())

    def test_sample_batch_unique_and_excluding(self):
        space = _space((3,))
        first = space.sample_batch(5, rng=0)
        keys = {spec.encode().tobytes() for spec in first}
        assert len(keys) == 5
        more = space.sample_batch(5, rng=1, exclude=keys)
        assert all(spec.encode().tobytes() not in keys for spec in more)

    def test_sample_batch_handles_small_space(self):
        space = SearchSpace([BlockSearchInfo(depth=2)])  # only 3 architectures
        batch = space.sample_batch(10, rng=0)
        assert len(batch) <= 3

    def test_enumerate_small_space(self):
        space = SearchSpace([BlockSearchInfo(depth=2)])
        specs = list(space.enumerate())
        assert len(specs) == 3
        encodings = {spec.encode().tobytes() for spec in specs}
        assert len(encodings) == 3

    def test_enumerate_limit(self):
        space = _space((4,))
        assert len(list(space.enumerate(limit=10))) == 10

    def test_neighbors_are_admissible_one_step_moves(self):
        space = SearchSpace([BlockSearchInfo(depth=3, allowed_types={(0, 2): (NO_CONNECTION, ASC)})])
        spec = space.default_spec()
        neighbors = list(space.neighbors(spec))
        assert neighbors
        for neighbor in neighbors:
            assert space.contains(neighbor)
            assert int(np.sum(neighbor.encode() != spec.encode())) == 1

    def test_empty_block_list_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([])
