"""Tests of the autodiff engine itself: graph recording, backward, grad modes."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled, ops
from repro.tensor.tensor import _unbroadcast, ensure_tensor


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype.kind == "f"

    def test_integer_input_promoted_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "f"

    def test_zeros_ones_full(self):
        assert np.all(Tensor.zeros((2, 3)).data == 0)
        assert np.all(Tensor.ones((2, 3)).data == 1)
        assert np.all(Tensor.full((2, 2), 7.5).data == 7.5)

    def test_item_scalar(self):
        assert Tensor(np.array(3.5)).item() == 3.5

    def test_detach_shares_data_but_no_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        d.data[0] = 5.0
        assert t.data[0] == 5.0  # shares memory

    def test_copy_is_independent(self):
        t = Tensor(np.ones(3))
        c = t.copy()
        c.data[0] = 9.0
        assert t.data[0] == 1.0

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_comparison_operators_return_masks(self):
        t = Tensor(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose((t > 1.5).data, [0.0, 1.0, 1.0])
        np.testing.assert_allclose((t <= 2.0).data, [1.0, 1.0, 0.0])


class TestBackward:
    def test_simple_chain(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + 3.0 * x
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])  # 2x + 3 at x=2

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).backward()
        (x * 2.0).backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad_resets(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 5.0).backward()
        x.zero_grad()
        np.testing.assert_allclose(x.grad, [0.0])

    def test_backward_requires_scalar_or_explicit_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()
        y.backward(np.ones(3))
        np.testing.assert_allclose(x.grad, [2.0, 2.0, 2.0])

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_shared_subexpression_gradient(self):
        # y = a*b; z = y + y should give dz/da = 2b
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = Tensor(np.array([4.0]), requires_grad=True)
        y = a * b
        z = y + y
        z.backward()
        np.testing.assert_allclose(a.grad, [8.0])
        np.testing.assert_allclose(b.grad, [6.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3.0
        b = x * 5.0
        y = a * b  # y = 15 x^2, dy/dx = 30x = 60
        y.backward()
        np.testing.assert_allclose(x.grad, [60.0])

    def test_deep_chain_does_not_hit_recursion_limit(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        depth = 3000
        for _ in range(depth):
            y = y + 1.0
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_graph_size_counts_nodes(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = (x * 2.0) + (x * 3.0)
        assert y.graph_size() >= 3

    def test_topological_order_children_before_parents(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x * 2.0
        z = y + 1.0
        order = z._topological_order()
        assert order.index(x) < order.index(y) < order.index(z)


class TestGradMode:
    def test_no_grad_disables_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._backward is None

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_requires_grad_suppressed_inside_no_grad(self):
        with no_grad():
            t = Tensor(np.ones(2), requires_grad=True)
        assert not t.requires_grad


class TestUnbroadcast:
    def test_identity_when_shapes_match(self, rng):
        g = rng.normal(size=(3, 4))
        np.testing.assert_allclose(_unbroadcast(g, (3, 4)), g)

    def test_sum_over_prepended_axis(self, rng):
        g = rng.normal(size=(5, 3, 4))
        np.testing.assert_allclose(_unbroadcast(g, (3, 4)), g.sum(axis=0))

    def test_sum_over_size_one_axis(self, rng):
        g = rng.normal(size=(3, 4))
        np.testing.assert_allclose(_unbroadcast(g, (3, 1)), g.sum(axis=1, keepdims=True))

    def test_combined(self, rng):
        g = rng.normal(size=(2, 3, 4))
        result = _unbroadcast(g, (1, 4))
        np.testing.assert_allclose(result, g.sum(axis=(0, 1)).reshape(1, 4))

    def test_scalar_target(self, rng):
        g = rng.normal(size=(2, 3))
        np.testing.assert_allclose(_unbroadcast(g, ()), g.sum())


class TestEnsureTensor:
    def test_passthrough(self):
        t = Tensor(np.ones(2))
        assert ensure_tensor(t) is t

    def test_wraps_scalars_and_arrays(self):
        assert ensure_tensor(3.0).shape == ()
        assert ensure_tensor(np.ones((2, 2))).shape == (2, 2)


class TestMethodWrappers:
    def test_method_style_ops(self, rng):
        x = Tensor(rng.uniform(0.5, 1.5, size=(2, 3)), requires_grad=True)
        assert x.sum().shape == ()
        assert x.mean(axis=0).shape == (3,)
        assert x.max(axis=1).shape == (2,)
        assert x.reshape(3, 2).shape == (3, 2)
        assert x.reshape((6,)).shape == (6,)
        assert x.transpose().shape == (3, 2)
        assert x.exp().shape == (2, 3)
        assert x.log().shape == (2, 3)
        assert x.tanh().shape == (2, 3)
        assert x.sigmoid().shape == (2, 3)
        assert x.relu().shape == (2, 3)
        assert x.clip(0.0, 1.0).shape == (2, 3)
        assert x.flatten_batch().shape == (2, 3)

    def test_getitem_slicing(self, rng):
        x = Tensor(rng.normal(size=(4, 5)))
        assert x[1:3].shape == (2, 5)
        assert x[:, 0].shape == (4,)
