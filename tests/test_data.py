"""Tests of the synthetic datasets, loaders and transforms."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    BatchLoader,
    Compose,
    DatasetSplits,
    EventFrameNormalize,
    Normalize,
    RandomHorizontalFlip,
    RandomTranslate,
    TimeSubsample,
    available_datasets,
    events_to_frames,
    load_dataset,
    make_synthetic_cifar10,
    make_synthetic_cifar10_dvs,
    make_synthetic_dvs_gesture,
    train_val_test_split,
)
from repro.data.synthetic_cifar import SyntheticCIFAR10Config, generate_sample
from repro.data.synthetic_dvs import DVSEventConfig, generate_event_stream
from repro.data.synthetic_gesture import GESTURE_NAMES, GestureConfig, generate_gesture_sample


class TestArrayDataset:
    def test_basic_properties(self, rng):
        data = ArrayDataset(rng.random((10, 3, 4, 4)), np.arange(10) % 2)
        assert len(data) == 10
        assert data.num_classes == 2
        assert data.sample_shape == (3, 4, 4)
        assert not data.is_temporal

    def test_temporal_flag(self, rng):
        data = ArrayDataset(rng.random((4, 6, 2, 4, 4)), np.zeros(4))
        assert data.is_temporal

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(rng.random((4, 1, 2, 2)), np.zeros(5))

    def test_subset_and_class_counts(self, rng):
        data = ArrayDataset(rng.random((10, 1, 2, 2)), np.arange(10) % 5)
        subset = data.subset(np.array([0, 5]))
        assert len(subset) == 2
        assert subset.num_classes == 5
        np.testing.assert_array_equal(data.class_counts(), np.full(5, 2))

    def test_getitem_batch(self, rng):
        data = ArrayDataset(rng.random((6, 1, 2, 2)), np.arange(6) % 2)
        inputs, labels = data[np.array([0, 3])]
        assert inputs.shape == (2, 1, 2, 2) and labels.shape == (2,)


class TestSplitsAndLoader:
    def test_stratified_split_fractions(self, rng):
        data = ArrayDataset(rng.random((100, 1, 2, 2)), np.arange(100) % 10)
        splits = train_val_test_split(data, val_fraction=0.2, test_fraction=0.1, rng=0)
        assert len(splits.val) == 20 and len(splits.test) == 10 and len(splits.train) == 70
        # stratified: every class appears in every split
        assert np.all(splits.val.class_counts() > 0)
        assert np.all(splits.test.class_counts() > 0)

    def test_split_disjoint_and_complete(self, rng):
        inputs = np.arange(40).reshape(40, 1, 1, 1).astype(float)
        data = ArrayDataset(inputs, np.arange(40) % 4)
        splits = train_val_test_split(data, 0.25, 0.25, rng=1)
        values = np.concatenate([splits.train.inputs, splits.val.inputs, splits.test.inputs]).ravel()
        assert sorted(values.tolist()) == list(range(40))

    def test_invalid_fractions(self, rng):
        data = ArrayDataset(rng.random((10, 1, 2, 2)), np.zeros(10))
        with pytest.raises(ValueError):
            train_val_test_split(data, 0.6, 0.6)

    def test_splits_summary(self, tiny_dvs_splits):
        text = tiny_dvs_splits.summary()
        assert "train=" in text and "classes=" in text

    def test_loader_covers_all_samples(self, rng):
        data = ArrayDataset(rng.random((23, 1, 2, 2)), np.arange(23) % 3)
        loader = BatchLoader(data, batch_size=5, shuffle=True, rng=0)
        assert len(loader) == 5
        seen = sum(len(labels) for _, labels in loader)
        assert seen == 23

    def test_loader_drop_last(self, rng):
        data = ArrayDataset(rng.random((23, 1, 2, 2)), np.arange(23) % 3)
        loader = BatchLoader(data, batch_size=5, drop_last=True, rng=0)
        assert len(loader) == 4
        assert sum(len(labels) for _, labels in loader) == 20

    def test_loader_shuffle_changes_order_but_not_content(self, rng):
        data = ArrayDataset(np.arange(12).reshape(12, 1, 1, 1).astype(float), np.arange(12) % 2)
        loader = BatchLoader(data, batch_size=12, shuffle=True, rng=0)
        (first_epoch, _), = list(loader)
        (second_epoch, _), = list(loader)
        assert sorted(first_epoch.ravel()) == sorted(second_epoch.ravel())
        assert not np.array_equal(first_epoch, second_epoch)

    def test_loader_applies_transform(self, rng):
        data = ArrayDataset(np.ones((4, 1, 2, 2)), np.zeros(4))
        loader = BatchLoader(data, batch_size=2, transform=lambda x, rng: x * 2.0, rng=0)
        for inputs, _ in loader:
            assert np.all(inputs == 2.0)

    def test_invalid_batch_size(self, rng):
        data = ArrayDataset(rng.random((4, 1, 2, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            BatchLoader(data, batch_size=0)


class TestSyntheticCIFAR:
    def test_shapes_and_ranges(self, tiny_static_splits):
        assert tiny_static_splits.num_classes == 10
        assert tiny_static_splits.sample_shape == (3, 8, 8)
        assert tiny_static_splits.train.inputs.min() >= 0.0
        assert tiny_static_splits.train.inputs.max() <= 1.0

    def test_deterministic_given_seed(self):
        a = make_synthetic_cifar10(num_samples=20, image_size=8, seed=5)
        b = make_synthetic_cifar10(num_samples=20, image_size=8, seed=5)
        np.testing.assert_allclose(a.train.inputs, b.train.inputs)

    def test_different_seeds_differ(self):
        a = make_synthetic_cifar10(num_samples=20, image_size=8, seed=1)
        b = make_synthetic_cifar10(num_samples=20, image_size=8, seed=2)
        assert not np.allclose(a.train.inputs, b.train.inputs)

    def test_classes_are_visually_distinct(self):
        """Same-class samples must be more similar than different-class samples on average."""
        config = SyntheticCIFAR10Config(image_size=12, noise_level=0.05, max_translation=0)
        rng = np.random.default_rng(0)
        same, different = [], []
        for cls in range(4):
            a = generate_sample(cls, config, rng)
            b = generate_sample(cls, config, rng)
            c = generate_sample((cls + 5) % 10, config, rng)
            same.append(np.abs(a - b).mean())
            different.append(np.abs(a - c).mean())
        assert np.mean(same) < np.mean(different)

    def test_all_classes_present(self):
        splits = make_synthetic_cifar10(num_samples=100, image_size=8, seed=0)
        assert np.all(splits.train.class_counts() > 0)


class TestSyntheticDVS:
    def test_shapes(self, tiny_dvs_splits):
        assert tiny_dvs_splits.is_temporal
        assert tiny_dvs_splits.sample_shape == (4, 2, 8, 8)
        assert tiny_dvs_splits.num_classes == 10

    def test_event_frames_are_binary(self, tiny_dvs_splits):
        values = np.unique(tiny_dvs_splits.train.inputs)
        assert set(values).issubset({0.0, 1.0})

    def test_event_stream_generation(self):
        config = DVSEventConfig(image_size=10, num_steps=5)
        events, frames = generate_event_stream(3, config, np.random.default_rng(0))
        assert frames.shape == (5, 2, 10, 10)
        assert events.shape[1] == 4
        assert frames.sum() > 0  # movement produces events

    def test_events_to_frames_binning(self):
        events = np.array([[0, 1, 2, 1.0], [0, 1, 2, 1.0], [2, 3, 4, -1.0]])
        frames = events_to_frames(events, num_steps=3, image_size=6)
        assert frames[0, 0, 1, 2] == 1.0  # clipped ON count
        assert frames[2, 1, 3, 4] == 1.0  # OFF channel
        assert frames.sum() == 2.0

    def test_events_to_frames_empty(self):
        frames = events_to_frames(np.zeros((0, 4)), num_steps=3, image_size=4)
        assert frames.sum() == 0.0

    def test_deterministic_given_seed(self):
        a = make_synthetic_cifar10_dvs(num_samples=10, image_size=8, num_steps=4, seed=3)
        b = make_synthetic_cifar10_dvs(num_samples=10, image_size=8, num_steps=4, seed=3)
        np.testing.assert_allclose(a.train.inputs, b.train.inputs)


class TestSyntheticGesture:
    def test_eleven_classes(self, tiny_gesture_splits):
        assert tiny_gesture_splits.num_classes == len(GESTURE_NAMES) == 11

    def test_shapes(self, tiny_gesture_splits):
        assert tiny_gesture_splits.sample_shape == (4, 2, 8, 8)

    def test_every_gesture_generates_events(self):
        config = GestureConfig(image_size=12, num_steps=8, noise_events_per_step=0)
        for cls in range(11):
            frames = generate_gesture_sample(cls, config, np.random.default_rng(0))
            assert frames.sum() > 0, f"gesture {cls} produced no events"

    def test_gestures_have_distinct_temporal_signatures(self):
        """Different motion classes must produce visibly different event patterns."""
        config = GestureConfig(image_size=12, num_steps=8, noise_events_per_step=0, speed_jitter=0.0)
        rng = np.random.default_rng(0)
        clap = generate_gesture_sample(0, config, rng)
        drums = generate_gesture_sample(8, config, rng)
        assert np.abs(clap - drums).sum() > 0

    def test_deterministic_given_seed(self):
        a = make_synthetic_dvs_gesture(num_samples=11, image_size=8, num_steps=4, seed=2)
        b = make_synthetic_dvs_gesture(num_samples=11, image_size=8, num_steps=4, seed=2)
        np.testing.assert_allclose(a.train.inputs, b.train.inputs)


class TestRegistry:
    def test_available(self):
        assert set(available_datasets()) == {"cifar10", "cifar10-dvs", "dvs128-gesture"}

    def test_aliases(self):
        splits = load_dataset("CIFAR-10-DVS", num_samples=10, image_size=8, num_steps=3, seed=0)
        assert splits.is_temporal

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")


class TestTransforms:
    def test_normalize(self, rng):
        batch = rng.random((4, 3, 5, 5))
        out = Normalize(mean=0.5, std=0.5)(batch, rng)
        np.testing.assert_allclose(out, (batch - 0.5) / 0.5)

    def test_normalize_per_channel(self, rng):
        batch = rng.random((2, 3, 4, 4))
        out = Normalize(mean=[0.1, 0.2, 0.3], std=[1.0, 1.0, 1.0])(batch, rng)
        np.testing.assert_allclose(out[:, 1], batch[:, 1] - 0.2)

    def test_normalize_zero_std_rejected(self):
        with pytest.raises(ValueError):
            Normalize(std=0.0)

    def test_event_frame_normalize(self, rng):
        batch = rng.random((2, 3, 2, 4, 4)) * 5
        out = EventFrameNormalize(clip_max=2.0)(batch, rng)
        assert out.max() <= 1.0 and out.min() >= 0.0

    def test_horizontal_flip_all(self, rng):
        batch = rng.random((3, 1, 4, 4))
        out = RandomHorizontalFlip(p=1.0)(batch, rng)
        np.testing.assert_allclose(out, batch[..., ::-1])

    def test_horizontal_flip_none(self, rng):
        batch = rng.random((3, 1, 4, 4))
        out = RandomHorizontalFlip(p=0.0)(batch, rng)
        np.testing.assert_allclose(out, batch)

    def test_translate_preserves_content(self, rng):
        batch = rng.random((2, 1, 6, 6))
        out = RandomTranslate(max_shift=2)(batch, rng)
        np.testing.assert_allclose(np.sort(out.ravel()), np.sort(batch.ravel()))

    def test_time_subsample(self, rng):
        batch = rng.random((2, 8, 2, 4, 4))
        out = TimeSubsample(stride=2)(batch, rng)
        assert out.shape == (2, 4, 2, 4, 4)

    def test_time_subsample_ignores_static(self, rng):
        batch = rng.random((2, 3, 4, 4))
        assert TimeSubsample(stride=2)(batch, rng).shape == batch.shape

    def test_compose(self, rng):
        batch = rng.random((2, 1, 4, 4))
        pipeline = Compose([Normalize(0.0, 1.0), RandomHorizontalFlip(p=1.0)])
        out = pipeline(batch, rng)
        np.testing.assert_allclose(out, batch[..., ::-1])
