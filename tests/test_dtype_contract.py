"""Differential tests of the float32 substrate against the pinned tolerance
contract (PR 8).

Bit-equality between float32 and float64 runs is impossible, so the contract
(:mod:`repro.tensor.tolerance`) is the spec: a float32 chain of length ``n``
must agree with the float64 reference within
``FLOAT32_SAFETY * eps32 * n * (scale + |reference|)``.  These tests pin

* the contract API itself (bounds, failure reporting),
* per-op conformance, property-based over random geometries,
* an *exactness* property on dyadic-rational workloads (where float32 incurs
  no rounding at all, the two substrates must agree bitwise — a far sharper
  differential check than any tolerance),
* end-to-end temporal evaluations (``Module.to_dtype`` casting, state-buffer
  dtypes, workspace pools, aggregation) and the latency objective in float32.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import get_template
from repro.nn import BatchNorm2d, Conv2d, Flatten, Linear, Sequential
from repro.snn import LeakyIntegrator, LIFNeuron, TemporalRunner
from repro.snn.encoding import RateEncoder, encode_batch
from repro.snn.temporal import run_temporal
from repro.tensor import (
    FLOAT32_SAFETY,
    Tensor,
    assert_float32_contract,
    float32_tolerance,
    float32_within_contract,
    no_grad,
    ops,
)
from repro.tensor.conv import conv2d
from repro.tensor.random import seed_everything
from repro.tensor.workspace import _POOL
from repro.training.evaluation import measure_latency_ms

FAST = settings(max_examples=20, deadline=None)

F32 = np.float32
F64 = np.float64


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# ---------------------------------------------------------------------------
# the contract API
# ---------------------------------------------------------------------------

class TestContractAPI:
    def test_tolerance_grows_linearly_with_chain_length(self):
        eps32 = float(np.finfo(np.float32).eps)
        assert float32_tolerance(1) == FLOAT32_SAFETY * eps32
        assert float32_tolerance(100) == pytest.approx(100 * float32_tolerance(1))
        with pytest.raises(ValueError):
            float32_tolerance(0)

    def test_within_contract_boundary(self):
        reference = np.array([1.0])
        tol = float32_tolerance(10)
        inside = reference + tol * (1.0 + np.abs(reference)) * 0.99
        outside = reference + tol * (1.0 + np.abs(reference)) * 1.01
        assert float32_within_contract(inside, reference, 10)
        assert not float32_within_contract(outside, reference, 10)

    def test_assert_reports_worst_violation(self):
        reference = np.zeros(4)
        bad = np.array([0.0, 0.0, 1.0, 0.0])
        with pytest.raises(AssertionError, match="flat index 2"):
            assert_float32_contract(bad, reference, 1, context="unit")

    def test_scale_guards_near_zero_outputs(self):
        """Elements near zero are judged against the global scale, not their
        own magnitude — catastrophic cancellation must not fail the contract."""
        reference = np.array([1000.0, 0.0])
        actual = np.array([1000.0, 1e-4])  # absolute error tiny vs scale 1000
        assert float32_within_contract(actual, reference, 8)


# ---------------------------------------------------------------------------
# per-op conformance, property-based
# ---------------------------------------------------------------------------

class TestPerOpContract:
    @FAST
    @given(
        c_in=st.integers(1, 8),
        c_out=st.integers(1, 8),
        k=st.sampled_from([1, 3, 5]),
        padding=st.integers(0, 2),
        stride=st.integers(1, 2),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_conv2d(self, c_in, c_out, k, padding, stride, seed):
        if 12 + 2 * padding < k:
            return
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((2, c_in, 12, 12))
        w = rng.standard_normal((c_out, c_in, k, k))
        b = rng.standard_normal(c_out)
        with no_grad():
            ref = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding).data
            f32 = conv2d(
                Tensor(x.astype(F32)), Tensor(w.astype(F32)), Tensor(b.astype(F32)),
                stride=stride, padding=padding,
            ).data
        assert f32.dtype == F32
        assert_float32_contract(f32, ref, accumulation_length=c_in * k * k + 1, context="conv2d")

    @FAST
    @given(n=st.integers(1, 16), f=st.integers(1, 256), m=st.integers(1, 32), seed=st.integers(0, 2**31 - 1))
    def test_matmul(self, n, f, m, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, f))
        b = rng.standard_normal((f, m))
        with no_grad():
            f32 = ops.matmul(Tensor(a.astype(F32)), Tensor(b.astype(F32))).data
        assert f32.dtype == F32
        assert_float32_contract(f32, a @ b, accumulation_length=f, context="matmul")

    @FAST
    @given(size=st.integers(2, 4096), seed=st.integers(0, 2**31 - 1))
    def test_sum_and_mean(self, size, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(size)
        with no_grad():
            s32 = ops.sum(Tensor(x.astype(F32))).data
            m32 = ops.mean(Tensor(x.astype(F32))).data
        assert_float32_contract(s32, x.sum(), accumulation_length=size, context="sum")
        assert_float32_contract(m32, x.mean(), accumulation_length=size, context="mean")


# ---------------------------------------------------------------------------
# dyadic-rational exactness: the sharpest differential check
# ---------------------------------------------------------------------------

class TestDyadicExactness:
    @FAST
    @given(kind_seed=st.integers(0, 2**31 - 1), steps=st.integers(2, 5))
    def test_spiking_chain_is_bitwise_exact_on_dyadic_workloads(self, kind_seed, steps):
        """Weights in 1/64 steps, binary inputs, beta=0.5, threshold=0.75:
        every intermediate is exactly representable in float32, so the float32
        run must reproduce the float64 run **bitwise** — any discrepancy is a
        substrate bug (hidden upcast, wrong op order), not rounding."""
        rng = np.random.default_rng(kind_seed)
        batch = (rng.random((2, steps, 2, 8, 8)) < 0.2).astype(F64)
        model = Sequential(
            Conv2d(2, 4, kernel_size=3, padding=1),
            LIFNeuron(beta=0.5, threshold=0.75),
            Flatten(),
            Linear(4 * 8 * 8, 4),
            LeakyIntegrator(0.5),
        )
        for param in model.parameters():
            quantised = np.round(rng.uniform(-1.0, 1.0, size=param.shape) * 64.0) / 64.0
            param.data[...] = quantised
        model.eval()
        with no_grad():
            ref = run_temporal(model, batch, num_steps=steps, readout="membrane_last").data
            model.to_dtype(F32)
            f32 = run_temporal(model, batch.astype(F32), num_steps=steps, readout="membrane_last").data
        assert f32.dtype == F32
        assert np.array_equal(ref, f32.astype(F64))


# ---------------------------------------------------------------------------
# end-to-end: to_dtype, state buffers, aggregation, latency
# ---------------------------------------------------------------------------

class TestToDtype:
    def test_casts_float_params_and_buffers_only(self):
        model = Sequential(Conv2d(2, 4, kernel_size=3, padding=1), BatchNorm2d(4))
        model.register_buffer("step_count", np.array(3, dtype=np.int64))
        result = model.to_dtype(F32)
        assert result is model  # chainable
        assert all(p.data.dtype == F32 for p in model.parameters())
        bn = model[1]
        assert bn.running_mean.dtype == F32 and bn.running_var.dtype == F32
        assert model.step_count.dtype == np.int64  # non-float buffer untouched
        model.to_dtype(F64)
        assert all(p.data.dtype == F64 for p in model.parameters())
        with pytest.raises(ValueError):
            model.to_dtype(np.int32)

    def test_state_and_workspace_buffers_follow_the_input_dtype(self, rng):
        neuron = LIFNeuron(beta=0.9)
        neuron.reset_state()
        with no_grad():
            out = neuron(Tensor(rng.standard_normal((2, 4)).astype(F32)))
            assert out.data.dtype == F32
            assert neuron._fast["membrane"].dtype == F32
            assert neuron._fast["spikes"].dtype == F32
            # switching back to float64 reallocates rather than reusing stale f32
            neuron.reset_state()
            out64 = neuron(Tensor(rng.standard_normal((2, 4))))
            assert out64.data.dtype == F64
            assert neuron._fast["membrane"].dtype == F64
        # the conv im2col workspace adopts the input dtype too
        with no_grad():
            conv2d(Tensor(rng.standard_normal((1, 2, 8, 8)).astype(F32)),
                   Tensor(rng.standard_normal((4, 2, 3, 3)).astype(F32)), padding=1)
        assert _POOL._entries()["conv2d.cols"]["flat"].dtype == F32

    def test_encoders_preserve_float32(self, rng):
        batch32 = rng.random((2, 2, 8, 8)).astype(F32)
        steps = encode_batch(batch32, None, num_steps=3)
        assert all(s.data.dtype == F32 for s in steps)
        rate = RateEncoder(num_steps=3, rng=0)
        assert all(s.data.dtype == F32 for s in rate(batch32))
        # integer input still lands on float64 (the historical default)
        steps_int = encode_batch((rng.random((2, 2, 8, 8)) < 0.5).astype(np.int64), None, num_steps=2)
        assert all(s.data.dtype == F64 for s in steps_int)


class TestEndToEndContract:
    NUM_STEPS = 4

    def _run(self, dtype):
        seed_everything(7)
        template = get_template("resnet18", input_channels=2, num_classes=5)
        model = template.build(spiking=True, rng=0)
        model.eval()
        if dtype == F32:
            model.to_dtype(F32)
        batch = np.random.default_rng(1).random((2, self.NUM_STEPS, 2, 16, 16)).astype(dtype)
        with no_grad():
            out = run_temporal(model, batch, num_steps=self.NUM_STEPS)
        return out.data

    def test_template_within_contract(self):
        ref = self._run(F64)
        f32 = self._run(F32)
        assert f32.dtype == F32
        # generous composed chain length: deepest conv reduction x steps; the
        # fixed seed keeps every membrane comfortably away from the threshold
        # so the spike trains agree and only accumulated rounding remains
        assert_float32_contract(f32, ref, accumulation_length=4096, context="resnet18")

    def test_latency_objective_in_float32(self, rng):
        template = get_template("single_block", input_channels=2, num_classes=4)
        model = template.build(spiking=True, rng=0).to_dtype(F32)
        runner = TemporalRunner(model, num_steps=3)
        batch = rng.random((2, 2, 8, 8)).astype(F32)
        latency = measure_latency_ms(runner, batch, runs=2, warmup=1)
        assert latency > 0.0
        # explicit dtype override casts on behalf of the caller
        latency64 = measure_latency_ms(runner, batch, runs=1, warmup=0, dtype=F64)
        assert latency64 > 0.0
