"""Tests of the tracing subsystem (`repro.trace`) and its integrations.

Covers the span contract (falsy no-op while disabled, thread-local nesting,
error capture, scoped enablement), the bounded flight recorder (ring with a
counted drop policy, JSONL mirror), trace analysis/export (summaries, the
critical path, Chrome trace events), cross-process propagation through the
async evaluation executor and ``parallel_map`` (spans recorded in a worker
stitch under the parent's open span; counter deltas merge into the parent's
process-wide tallies), the ``repro trace`` CLI, and the bench-gate ceiling
that pins the disabled-tracing overhead contract.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np
import pytest

ROOT = Path(__file__).resolve().parents[1]
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))

from repro.core.async_eval import AsyncEvaluationExecutor
from repro.core.objectives import EvaluationResult, Objective
from repro.core.search_space import BlockSearchInfo, SearchSpace
from repro.trace import (
    FlightRecorder,
    absorb,
    capture_context,
    chrome_trace,
    critical_path,
    format_summary,
    is_enabled,
    load_trace,
    ops_span,
    remote_activation,
    span,
    summarize,
    tracing,
)
from repro.training.parallel import parallel_map


def make_space(depth: int = 4) -> SearchSpace:
    return SearchSpace([BlockSearchInfo(depth=depth, name="block")], name="trace-test")


class SpanningObjective(Objective):
    """Picklable objective that opens an ``evaluate`` span where it runs."""

    def __call__(self, spec) -> EvaluationResult:
        with span("evaluate") as current:
            if current:
                current.set(arch=",".join(str(v) for v in spec.encode()))
            value = float(spec.total_skips()) / max(spec.encode().size, 1)
        return EvaluationResult(spec=spec, objective_value=value, accuracy=1 - value)


def _traced_square(value: int) -> int:
    with span("map.item") as current:
        if current:
            current.set(value=value)
    return value * value


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------

class TestSpans:
    def test_disabled_span_is_falsy_shared_noop(self):
        assert not is_enabled()
        first, second = span("first"), span("second")
        assert first is second  # the shared singleton: no allocation while off
        assert not first
        with first as inner:
            assert inner.set(anything=1) is inner

    def test_nesting_ids_error_capture_and_attrs(self):
        recorder = FlightRecorder(capacity=16)
        with tracing(recorder=recorder, trace_id="t-unit"):
            with pytest.raises(ValueError):
                with span("outer", kind="test"):
                    with span("inner"):
                        raise ValueError("boom")
        inner, outer = recorder.spans()  # completion order
        assert (inner["name"], outer["name"]) == ("inner", "outer")
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert inner["trace_id"] == outer["trace_id"] == "t-unit"
        assert outer["attrs"]["kind"] == "test"
        # the exception is stamped on every span it unwound through
        assert inner["attrs"]["error"] == "ValueError"
        assert outer["attrs"]["error"] == "ValueError"
        assert outer["end"] >= inner["end"] >= inner["start"] >= outer["start"]

    def test_tracing_scope_restores_prior_state(self):
        with tracing(recorder=FlightRecorder(capacity=4)):
            assert is_enabled()
            with tracing(enabled=False):
                assert not is_enabled()  # scopes nest
            assert is_enabled()
        assert not is_enabled()
        assert not span("after")

    def test_ops_spans_are_gated_separately(self):
        plain = FlightRecorder(capacity=16)
        with tracing(recorder=plain):
            with ops_span("op.conv2d"):
                pass
            with span("evaluate"):
                pass
        assert [entry["name"] for entry in plain.spans()] == ["evaluate"]

        profiled = FlightRecorder(capacity=16)
        with tracing(recorder=profiled, ops=True):
            with ops_span("op.conv2d"):
                pass
        assert [entry["name"] for entry in profiled.spans()] == ["op.conv2d"]

    def test_span_ids_embed_pid_and_never_repeat(self):
        recorder = FlightRecorder(capacity=16)
        with tracing(recorder=recorder):
            for _ in range(5):
                with span("step"):
                    pass
        ids = [entry["span_id"] for entry in recorder.spans()]
        assert len(set(ids)) == 5


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------

class TestFlightRecorder:
    def test_ring_drops_oldest_and_counts(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(5):
            recorder.record({"name": "step", "span_id": str(index)})
        assert len(recorder) == 3
        assert recorder.dropped == 2
        assert [entry["span_id"] for entry in recorder.spans()] == ["2", "3", "4"]
        recorder.clear()
        assert len(recorder) == 0 and recorder.dropped == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_jsonl_mirror_outlives_the_ring(self, tmp_path):
        path = tmp_path / "traces" / "run.jsonl"
        recorder = FlightRecorder(capacity=2, jsonl_path=path)
        with tracing(recorder=recorder, trace_id="t-file"):
            for index in range(4):
                with span("step", index=index):
                    pass
        recorder.close()
        assert len(recorder) == 2 and recorder.dropped == 2  # ring is bounded
        loaded = load_trace(path)
        assert [entry["attrs"]["index"] for entry in loaded] == [0, 1, 2, 3]

    def test_numpy_attributes_serialize_to_jsonl(self, tmp_path):
        path = tmp_path / "np.jsonl"
        recorder = FlightRecorder(capacity=4, jsonl_path=path)
        with tracing(recorder=recorder):
            with span("step", scalar=np.float64(1.5), row=np.arange(2)):
                pass
        recorder.close()
        loaded = load_trace(path)
        assert loaded[0]["attrs"]["scalar"] == 1.5
        assert loaded[0]["attrs"]["row"] == [0, 1]

    def test_drain_empties_ring_but_keeps_dropped(self):
        recorder = FlightRecorder(capacity=2)
        for index in range(3):
            recorder.record({"name": "step", "span_id": str(index)})
        drained = recorder.drain()
        assert [entry["span_id"] for entry in drained] == ["1", "2"]
        assert len(recorder) == 0 and recorder.dropped == 1


# ---------------------------------------------------------------------------
# analysis + export
# ---------------------------------------------------------------------------

def _synthetic_spans():
    """A two-process tree with known timings.

    root(10ms) -> evaluate(6ms, worker pid) -> train.epoch(4ms)
               -> propose(3ms)
    """
    return [
        {"name": "search", "span_id": "a", "parent_id": None, "trace_id": "t",
         "start": 0.0, "end": 0.010, "pid": 1, "thread": "main"},
        {"name": "evaluate", "span_id": "b", "parent_id": "a", "trace_id": "t",
         "start": 0.001, "end": 0.007, "pid": 2, "thread": "main",
         "attrs": {"arch": "0,1"}},
        {"name": "train.epoch", "span_id": "c", "parent_id": "b", "trace_id": "t",
         "start": 0.002, "end": 0.006, "pid": 2, "thread": "main"},
        {"name": "propose", "span_id": "d", "parent_id": "a", "trace_id": "t",
         "start": 0.007, "end": 0.010, "pid": 1, "thread": "main"},
    ]


class TestAnalysis:
    def test_summarize_self_times_do_not_double_count(self):
        summary = summarize(_synthetic_spans())
        phases = {row["name"]: row for row in summary["phases"]}
        assert phases["search"]["self_ms"] == pytest.approx(1.0)  # 10 - (6 + 3)
        assert phases["evaluate"]["self_ms"] == pytest.approx(2.0)  # 6 - 4
        assert phases["train.epoch"]["self_ms"] == pytest.approx(4.0)
        assert summary["span_count"] == 4
        assert summary["processes"] == [1, 2]
        assert summary["wall_ms"] == pytest.approx(10.0)
        assert summary["evaluation_count"] == 1
        assert summary["slowest_evaluations"][0]["attrs"]["arch"] == "0,1"

    def test_critical_path_descends_longest_children(self):
        path = [step["name"] for step in critical_path(_synthetic_spans())]
        assert path == ["search", "evaluate", "train.epoch"]

    def test_format_summary_renders_breakdown(self):
        text = format_summary(summarize(_synthetic_spans()))
        assert "Per-phase breakdown" in text
        assert "Critical path" in text
        assert "Slowest evaluations" in text
        assert "evaluate" in text

    def test_chrome_trace_events_are_valid(self):
        payload = chrome_trace(_synthetic_spans())
        events = payload["traceEvents"]
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == 4
        assert min(event["ts"] for event in complete) == 0.0  # rebased to t=0
        for event in complete:
            assert event["dur"] >= 0.0
            assert "span_id" in event["args"]
        # one metadata record names each (pid, thread) track
        metadata = [event for event in events if event["ph"] == "M"]
        assert {(event["pid"], event["tid"]) for event in metadata} == {
            (event["pid"], event["tid"]) for event in complete
        }

    def test_empty_inputs_are_handled(self):
        assert critical_path([]) == []
        assert summarize([])["span_count"] == 0
        assert chrome_trace([])["traceEvents"] == []

    def test_load_trace_accepts_all_three_shapes(self, tmp_path):
        spans = _synthetic_spans()
        jsonl = tmp_path / "spans.jsonl"
        jsonl.write_text("\n".join(json.dumps(entry) for entry in spans) + "\n")
        array = tmp_path / "spans.json"
        array.write_text(json.dumps(spans))
        endpoint = tmp_path / "endpoint.json"
        endpoint.write_text(json.dumps({"job_id": "job-1", "spans": spans}))
        for path in (jsonl, array, endpoint):
            assert [entry["span_id"] for entry in load_trace(path)] == ["a", "b", "c", "d"]


# ---------------------------------------------------------------------------
# cross-process propagation
# ---------------------------------------------------------------------------

class TestPropagation:
    def test_capture_context_is_none_while_disabled(self):
        assert capture_context() is None

    def test_remote_activation_collects_and_restitches(self):
        parent_recorder = FlightRecorder(capacity=64)
        with tracing(recorder=parent_recorder, trace_id="t-remote"):
            with span("search") as parent:
                context = capture_context()
        assert context == {
            "trace_id": "t-remote",
            "parent_id": parent.span_id,
            "ops": False,
        }
        # "worker": activate the context with no ambient tracing state
        with remote_activation(context) as collected:
            with span("evaluate"):
                pass
        assert not is_enabled()  # activation is scoped
        assert [entry["name"] for entry in collected] == ["evaluate"]
        assert collected[0]["trace_id"] == "t-remote"
        assert collected[0]["parent_id"] == parent.span_id
        # "parent": absorb folds into the active recorder
        with tracing(recorder=parent_recorder, trace_id="t-remote"):
            absorb(collected)
        names = [entry["name"] for entry in parent_recorder.spans()]
        assert names == ["search", "evaluate"]

    def test_remote_activation_none_context_is_inert(self):
        with remote_activation(None) as collected:
            assert not is_enabled()
            with span("evaluate"):
                pass
        assert collected == []

    def test_executor_stitches_worker_spans_under_parent(self):
        """Pool or serial fallback alike: every evaluate span lands in the
        parent's recorder, parented under the span open at submission."""
        specs = make_space().sample_batch(3, rng=0)
        recorder = FlightRecorder(capacity=1024)
        with tracing(recorder=recorder, trace_id="t-exec"):
            with span("search") as parent:
                with AsyncEvaluationExecutor(SpanningObjective(), workers=2) as executor:
                    for spec in specs:
                        executor.submit(spec)
                    completed = list(executor.drain())
        assert len(completed) == 3
        evaluates = [entry for entry in recorder.spans() if entry["name"] == "evaluate"]
        assert len(evaluates) == 3
        for entry in evaluates:
            assert entry["trace_id"] == "t-exec"
            assert entry["parent_id"] == parent.span_id
        # transport-only payload never survives absorption
        for done in completed:
            assert done.result.telemetry is None

    def test_executor_with_tracing_disabled_ships_unwrapped(self):
        specs = make_space().sample_batch(2, rng=1)
        with AsyncEvaluationExecutor(SpanningObjective(), workers=2) as executor:
            for spec in specs:
                executor.submit(spec)
            completed = list(executor.drain())
        assert len(completed) == 2
        for done in completed:
            assert done.result.telemetry is None

    def test_parallel_map_stitches_item_spans(self):
        recorder = FlightRecorder(capacity=256)
        with tracing(recorder=recorder, trace_id="t-map"):
            with span("measure") as root:
                results = parallel_map(_traced_square, [1, 2, 3], workers=2)
        assert results == [1, 4, 9]
        items = [entry for entry in recorder.spans() if entry["name"] == "map.item"]
        assert sorted(entry["attrs"]["value"] for entry in items) == [1, 2, 3]
        for entry in items:
            assert entry["trace_id"] == "t-map"
            assert entry["parent_id"] == root.span_id

    def test_worker_counter_deltas_merge_into_aggregates(self):
        from repro.core.cache import merge_store_counters, store_counters
        from repro.tensor.sparse import aggregate_sparse_counters, merge_sparse_counters

        sparse_before = aggregate_sparse_counters()
        merge_sparse_counters({"sparse_steps": 2, "dense_steps": 1, "probe_failures": 1})
        sparse_after = aggregate_sparse_counters()
        assert sparse_after["sparse_steps"] - sparse_before["sparse_steps"] == 2
        assert sparse_after["dense_steps"] - sparse_before["dense_steps"] == 1
        assert sparse_after["probe_failures"] - sparse_before["probe_failures"] == 1

        store_before = store_counters()
        merge_store_counters({"hits": 3, "misses": 2})
        store_after = store_counters()
        assert store_after["hits"] - store_before["hits"] == 3
        assert store_after["misses"] - store_before["misses"] == 2


# ---------------------------------------------------------------------------
# the `repro trace` CLI
# ---------------------------------------------------------------------------

class TestTraceCommand:
    def _write_trace(self, tmp_path) -> Path:
        path = tmp_path / "run.jsonl"
        recorder = FlightRecorder(capacity=64, jsonl_path=path)
        with tracing(recorder=recorder, trace_id="t-cli"):
            with span("search"):
                with span("evaluate", arch="0,1"):
                    with span("train.epoch", epoch=0):
                        pass
        recorder.close()
        return path

    def test_renders_breakdown_and_chrome_export(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = self._write_trace(tmp_path)
        chrome_path = tmp_path / "chrome.json"
        code = main(["trace", str(trace_path), "--chrome", str(chrome_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Per-phase breakdown" in out
        assert "Critical path" in out
        payload = json.loads(chrome_path.read_text())
        assert sum(1 for event in payload["traceEvents"] if event["ph"] == "X") == 3

    def test_missing_and_empty_files_exit_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", str(tmp_path / "missing.jsonl")]) == 1
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", str(empty)]) == 1
        err = capsys.readouterr().err
        assert "cannot read" in err and "no spans" in err


# ---------------------------------------------------------------------------
# the overhead contract's CI gate
# ---------------------------------------------------------------------------

class TestBenchGateCeiling:
    OK = {
        "conv2d_forward": {"speedup": 3.0},
        "lif_step": {"speedup": 3.0},
        "sparse_eval_rate_0.01": {"speedup": 3.0},
        "bptt_step": {"speedup": 3.0},
        "tracing_overhead": {"overhead_ratio": 1.005},
    }

    def test_ratio_under_ceiling_passes(self):
        from tools.bench_gate import gate

        assert gate({}, self.OK) == []

    def test_ratio_over_ceiling_fails(self):
        from tools.bench_gate import gate

        current = dict(self.OK, tracing_overhead={"overhead_ratio": 1.05})
        failures = gate({}, current)
        assert len(failures) == 1
        assert "tracing_overhead.overhead_ratio" in failures[0]
        assert "ceiling" in failures[0]

    def test_missing_overhead_section_fails(self):
        from tools.bench_gate import gate

        current = {key: value for key, value in self.OK.items() if key != "tracing_overhead"}
        failures = gate({}, current)
        assert any("tracing_overhead.overhead_ratio: missing" in failure for failure in failures)
