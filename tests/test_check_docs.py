"""Unit tests of the docs checker's anchor validation (`tools/check_docs.py`).

The CI docs job runs the checker over the real docs; these tests pin the
anchor semantics themselves — GitHub-style slugs, duplicate numbering,
fenced headings excluded — against synthetic files, so a regression in the
checker cannot hide behind currently-valid docs.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "check_docs", Path(__file__).resolve().parent.parent / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_docs)


class TestHeadingSlug:
    def test_plain_and_inline_markup(self):
        assert check_docs.heading_slug("Shutdown semantics") == "shutdown-semantics"
        assert check_docs.heading_slug("GET /jobs/{id}/events") == "get-jobsidevents"
        assert check_docs.heading_slug("Sharded layout (`<store>.shards/`)") == (
            "sharded-layout-storeshards"
        )
        assert check_docs.heading_slug("The *evaluation* `substrate`") == (
            "the-evaluation-substrate"
        )

    def test_duplicate_headings_are_numbered(self, tmp_path):
        path = tmp_path / "dup.md"
        path.write_text("# Setup\n\n## Setup\n\n### Setup\n")
        assert check_docs.file_anchors(path) == {"setup", "setup-1", "setup-2"}

    def test_fenced_headings_are_not_anchors(self, tmp_path):
        path = tmp_path / "fenced.md"
        path.write_text("# Real\n\n```bash\n# not a heading\n```\n\n## Also real\n")
        assert check_docs.file_anchors(path) == {"real", "also-real"}


class TestAnchorChecking:
    def _errors(self, tmp_path, source_text, **other_files):
        for name, text in other_files.items():
            (tmp_path / f"{name}.md").write_text(text)
        source = tmp_path / "source.md"
        source.write_text(source_text)
        check_docs.REPO_ROOT = tmp_path  # keep error paths relative
        return check_docs.check_links(source, {})

    def test_valid_same_file_and_cross_file_anchors(self, tmp_path):
        errors = self._errors(
            tmp_path,
            "# Top\n\n[a](#top)\n[b](other.md#section)\n[c](other.md)\n",
            other="## Section\n",
        )
        assert errors == []

    def test_dead_anchors_are_flagged(self, tmp_path):
        errors = self._errors(
            tmp_path,
            "# Top\n\n[a](#missing)\n[b](other.md#also-missing)\n",
            other="## Section\n",
        )
        assert len(errors) == 2
        assert any("dead anchor -> #missing" in e for e in errors)
        assert any("dead anchor -> other.md#also-missing" in e for e in errors)

    def test_dead_file_wins_over_dead_anchor(self, tmp_path):
        errors = self._errors(tmp_path, "[a](gone.md#anything)\n")
        assert errors == ["source.md: dead link -> gone.md#anything"]

    def test_external_links_are_skipped(self, tmp_path):
        errors = self._errors(
            tmp_path, "[a](https://example.com/x#frag)\n[b](mailto:x@y.z)\n"
        )
        assert errors == []
