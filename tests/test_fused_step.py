"""Tests for the fused temporal training kernel (:mod:`repro.snn.fused_step`).

The fused path's contract has three legs, each pinned here:

* **bit-identity** — for every supported (reset mechanism x readout) pair the
  fused step reproduces graph autograd exactly: same loss, same logits, same
  bits in every parameter gradient and batch-norm running statistic;
* **dispatch discipline** — ``auto`` fuses only when the compiled plan
  qualifies and silently falls back otherwise, ``on`` raises with the
  disqualifying reason, ``off`` always takes the recorded graph, and the
  routing counters account for every step either way;
* **residual lifetime** — pooled residual stashes never alias anything that
  escapes a step: interleaved training of two models produces the same bits
  as training them separately, and a backward against residuals overwritten
  by a newer forward fails loudly instead of computing garbage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.async_eval import _absorb_telemetry, _TelemetryCall
from repro.core.objectives import EvaluationResult
from repro.data.loaders import ArrayDataset
from repro.models import get_template
from repro.nn import CrossEntropyLoss, Linear, Sequential
from repro.snn import TemporalRunner
from repro.snn.fused_step import (
    aggregate_fused_counters,
    fused_counters,
    fused_mode,
    fused_training,
    reset_fused_counters,
)
from repro.snn.neurons import LIFNeuron
from repro.tensor import Tensor
from repro.tensor.tolerance import assert_float32_contract
from repro.training import Trainer, TrainingConfig

RESETS = ("subtract", "zero", "none")
READOUTS = ("membrane_mean", "membrane_last", "spike_count", "spike_rate")


def build_model(reset: str = "subtract"):
    """A small spiking SkipConnectionNetwork with deterministic weights."""
    template = get_template("resnet18", input_channels=2, num_classes=10, stage_channels=(6, 8))
    model = template.build(spiking=True, rng=0)
    if reset != "subtract":
        for module in model.modules():
            if isinstance(module, LIFNeuron):
                module.reset_mechanism = reset
    return model


def make_batch(batch_size: int = 4, seed: int = 0):
    rng = np.random.default_rng(seed)
    return rng.random((batch_size, 2, 12, 12)), rng.integers(0, 10, size=batch_size)


def one_step(mode: str, reset: str, readout: str, num_steps: int = 3):
    """One training step from a fresh seeded model; returns all observables."""
    batch, targets = make_batch()
    model = build_model(reset)
    runner = TemporalRunner(model, num_steps=num_steps, readout=readout)
    model.zero_grad()
    with fused_training(mode):
        logits = runner(batch)
        loss = CrossEntropyLoss()(logits, targets)
        loss.backward()
    grads = {
        name: None if p.grad is None else np.array(p.grad)
        for name, p in model.named_parameters()
    }
    stats = {
        f"{name}.{buf}": np.array(getattr(module, buf))
        for name, module in model.named_modules()
        for buf in ("running_mean", "running_var")
        if hasattr(module, buf)
    }
    return float(loss.item()), np.array(logits.data), grads, stats


class TestBitIdentity:
    @pytest.mark.parametrize("reset", RESETS)
    @pytest.mark.parametrize("readout", READOUTS)
    def test_fused_step_matches_graph_autograd_exactly(self, reset, readout):
        reset_fused_counters()
        graph_loss, graph_logits, graph_grads, graph_stats = one_step("off", reset, readout)
        fused_loss, fused_logits, fused_grads, fused_stats = one_step("on", reset, readout)
        assert fused_loss == graph_loss
        assert np.array_equal(fused_logits, graph_logits)
        assert set(fused_grads) == set(graph_grads)
        for name, reference in graph_grads.items():
            candidate = fused_grads[name]
            if reference is None:
                assert candidate is None, name
                continue
            assert candidate is not None, name
            assert np.array_equal(candidate, reference), f"grad {name} diverged"
        for name, reference in graph_stats.items():
            assert np.array_equal(fused_stats[name], reference), f"buffer {name} diverged"
        counters = fused_counters()
        assert counters["fused_steps"] == 1
        assert counters["fallback_steps"] == 1


def fit_smoke(fused: str, dtype=np.float64):
    """A deterministic two-epoch training run; returns the final weights."""
    rng = np.random.default_rng(7)
    inputs = rng.random((12, 2, 12, 12)).astype(dtype)
    targets = rng.integers(0, 10, size=12)
    model = build_model()
    if dtype is not np.float64:
        model.to_dtype(dtype)
    runner = TemporalRunner(model, num_steps=3)
    config = TrainingConfig(epochs=2, batch_size=4, learning_rate=0.05, seed=3, fused=fused)
    Trainer(config).fit(runner, ArrayDataset(inputs, targets))
    return {name: np.array(p.data) for name, p in model.named_parameters()}


class TestTrainerIntegration:
    def test_seeded_float64_run_reaches_identical_final_weights(self):
        reset_fused_counters()
        graph_weights = fit_smoke("off")
        assert fused_counters() == {"fused_steps": 0, "fallback_steps": 6}
        reset_fused_counters()
        fused_weights = fit_smoke("auto")
        assert fused_counters() == {"fused_steps": 6, "fallback_steps": 0}
        assert set(fused_weights) == set(graph_weights)
        for name, reference in graph_weights.items():
            assert np.array_equal(fused_weights[name], reference), f"weight {name} diverged"

    def test_float32_run_stays_within_tolerance_contract(self):
        graph_weights = fit_smoke("off", dtype=np.float32)
        fused_weights = fit_smoke("auto", dtype=np.float32)
        # six optimizer steps over a 3-step unroll on 4x2x12x12 batches: the
        # longest float32 accumulation chain is bounded by the per-layer
        # reduction size times the unroll, far under this conservative bound
        for name, reference in graph_weights.items():
            assert_float32_contract(
                np.asarray(fused_weights[name], dtype=np.float64),
                np.asarray(reference, dtype=np.float64),
                accumulation_length=50_000,
                context=f"fused float32 weight {name}",
            )


class TestDispatch:
    def test_mode_off_never_fuses(self):
        reset_fused_counters()
        one_step("off", "subtract", "membrane_mean")
        assert fused_counters() == {"fused_steps": 0, "fallback_steps": 1}

    def test_mode_nesting_restores_previous(self):
        assert fused_mode() == "auto"
        with fused_training("off"):
            assert fused_mode() == "off"
            with fused_training("on"):
                assert fused_mode() == "on"
            assert fused_mode() == "off"
        assert fused_mode() == "auto"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="fused mode"):
            with fused_training("sometimes"):
                pass  # pragma: no cover - never reached

    def test_truncation_falls_back_in_auto_and_raises_in_on(self):
        batch, targets = make_batch()
        model = build_model()
        runner = TemporalRunner(model, num_steps=4, truncation=2)
        reset_fused_counters()
        with fused_training("auto"):
            CrossEntropyLoss()(runner(batch), targets).backward()
        assert fused_counters()["fallback_steps"] == 1
        with fused_training("on"):
            with pytest.raises(RuntimeError, match="truncat"):
                runner(batch)

    def test_non_qualifying_model_falls_back_in_auto_and_raises_in_on(self):
        batch = np.random.default_rng(0).random((4, 8))
        model = Sequential(Linear(8, 4))
        runner = TemporalRunner(model, num_steps=2, readout="membrane_last")
        reset_fused_counters()
        with fused_training("on"):
            with pytest.raises(RuntimeError, match="SkipConnectionNetwork"):
                runner(Tensor(batch))

    def test_record_spikes_blocks_fusion_at_runtime(self):
        batch, targets = make_batch()
        model = build_model()
        next(m for m in model.modules() if isinstance(m, LIFNeuron)).record_spikes = True
        runner = TemporalRunner(model, num_steps=3)
        reset_fused_counters()
        with fused_training("auto"):
            CrossEntropyLoss()(runner(batch), targets).backward()
        assert fused_counters() == {"fused_steps": 0, "fallback_steps": 1}
        with fused_training("on"):
            with pytest.raises(RuntimeError, match="spike recording"):
                runner(batch)


class TestResidualLifetime:
    def test_interleaved_steps_do_not_alias(self):
        """Two models training in lockstep see exactly their own residuals.

        Residual stashes and scratches live in pooled per-thread buffers; if
        any were shared across kernels (or if write-back states aliased a
        pool), interleaving the forward passes would corrupt the first
        model's backward.  The grads must match the non-interleaved runs
        bit-for-bit, across two consecutive steps (step two also proves the
        written-back membrane states are owning copies).
        """
        batch, targets = make_batch()
        loss_fn = CrossEntropyLoss()

        def two_steps_grads(runner):
            grads = []
            for _ in range(2):
                runner.model.zero_grad()
                loss_fn(runner(batch), targets).backward()
                grads.append(
                    {name: np.array(p.grad) for name, p in runner.model.named_parameters()}
                )
            return grads

        with fused_training("on"):
            reference_a = two_steps_grads(TemporalRunner(build_model(), num_steps=3))
            reference_b = two_steps_grads(
                TemporalRunner(build_model("zero"), num_steps=3, readout="spike_rate")
            )

            runner_a = TemporalRunner(build_model(), num_steps=3)
            runner_b = TemporalRunner(build_model("zero"), num_steps=3, readout="spike_rate")
            interleaved_a, interleaved_b = [], []
            for step in range(2):
                runner_a.model.zero_grad()
                runner_b.model.zero_grad()
                loss_a = loss_fn(runner_a(batch), targets)
                loss_b = loss_fn(runner_b(batch), targets)  # overwrites pools? must not
                loss_a.backward()
                loss_b.backward()
                interleaved_a.append(
                    {name: np.array(p.grad) for name, p in runner_a.model.named_parameters()}
                )
                interleaved_b.append(
                    {name: np.array(p.grad) for name, p in runner_b.model.named_parameters()}
                )
        for step in range(2):
            for name, reference in reference_a[step].items():
                assert np.array_equal(interleaved_a[step][name], reference), (step, name)
            for name, reference in reference_b[step].items():
                assert np.array_equal(interleaved_b[step][name], reference), (step, name)

    def test_backward_after_newer_forward_raises(self):
        batch, targets = make_batch()
        runner = TemporalRunner(build_model(), num_steps=3)
        loss_fn = CrossEntropyLoss()
        with fused_training("on"):
            stale = loss_fn(runner(batch), targets)
            runner(batch)  # overwrites the pooled residuals
            with pytest.raises(RuntimeError, match="overwritten|generation|newer"):
                stale.backward()


class _FusedObjective:
    """Picklable objective running one fused training step (spec is ignored)."""

    def __call__(self, spec) -> EvaluationResult:
        batch, targets = make_batch()
        model = build_model()
        runner = TemporalRunner(model, num_steps=2)
        with fused_training("on"):
            loss = CrossEntropyLoss()(runner(batch), targets)
            loss.backward()
        return EvaluationResult(spec=spec, objective_value=float(loss.item()), accuracy=0.0)


class TestWorkerTelemetry:
    def test_fused_counter_deltas_ride_result_telemetry(self):
        """The async-eval telemetry channel ships fused routing deltas.

        Mirrors the sparse-inference plumbing: the worker wrapper snapshots
        the process aggregate around the objective, ships the delta on the
        result, and the parent folds it into its own aggregate on absorb —
        so ``async_workers=N`` searches keep a complete routing picture.
        """
        call = _TelemetryCall(_FusedObjective(), None)
        result = call("spec-placeholder")
        delta = result.telemetry["counters"]["fused"]
        assert delta["fused_steps"] == 1
        before = aggregate_fused_counters()
        _absorb_telemetry(result)
        after = aggregate_fused_counters()
        assert after["fused_steps"] == before["fused_steps"] + 1
        assert result.telemetry is None
