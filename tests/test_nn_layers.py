"""Tests of the trainable layers: Linear, Conv2d, BatchNorm2d, pooling, dropout."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
)
from repro.nn import init
from repro.tensor import Tensor, gradcheck


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(6, 4, rng=rng)
        out = layer(Tensor(rng.normal(size=(3, 6))))
        assert out.shape == (3, 4)

    def test_forward_matches_manual(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(5, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self, rng):
        layer = Linear(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradcheck(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        ok, err = gradcheck(lambda x: layer(x), [x])
        assert ok, err

    def test_weight_gradients_flow(self, rng):
        layer = Linear(4, 3, rng=rng)
        layer(Tensor(rng.normal(size=(2, 4)))).sum().backward()
        assert layer.weight.grad is not None and layer.weight.grad.any()
        assert layer.bias.grad is not None


class TestConv2dLayer:
    def test_forward_shape(self, rng):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_output_shape_helper(self, rng):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        assert layer.output_shape(8, 8) == (8, 4, 4)

    def test_depthwise_parameter_count(self, rng):
        layer = Conv2d(6, 6, 3, groups=6, bias=False, rng=rng)
        assert layer.weight.shape == (6, 1, 3, 3)

    def test_invalid_groups_raises(self, rng):
        with pytest.raises(ValueError):
            Conv2d(3, 4, 3, groups=2, rng=rng)

    def test_weight_gradients_flow(self, rng):
        layer = Conv2d(2, 3, 3, padding=1, rng=rng)
        layer(Tensor(rng.normal(size=(1, 2, 5, 5)))).sum().backward()
        assert layer.weight.grad is not None and layer.weight.grad.any()


class TestBatchNorm2d:
    def test_normalizes_in_training_mode(self, rng):
        layer = BatchNorm2d(3)
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(8, 3, 4, 4)))
        out = layer(x)
        per_channel_mean = out.data.mean(axis=(0, 2, 3))
        per_channel_std = out.data.std(axis=(0, 2, 3))
        np.testing.assert_allclose(per_channel_mean, np.zeros(3), atol=1e-7)
        np.testing.assert_allclose(per_channel_std, np.ones(3), atol=1e-3)

    def test_running_stats_update(self, rng):
        layer = BatchNorm2d(2, momentum=0.5)
        x = Tensor(rng.normal(loc=2.0, size=(16, 2, 4, 4)))
        layer(x)
        assert np.all(layer.running_mean > 0.5)

    def test_eval_mode_uses_running_stats(self, rng):
        layer = BatchNorm2d(2)
        x = Tensor(rng.normal(size=(8, 2, 4, 4)))
        for _ in range(20):
            layer(x)
        layer.eval()
        out_eval = layer(x)
        layer.train()
        out_train = layer(x)
        # once running stats converge to batch stats the two paths agree closely
        np.testing.assert_allclose(out_eval.data, out_train.data, atol=0.2)

    def test_scale_shift_applied(self, rng):
        layer = BatchNorm2d(2)
        layer.weight.data[:] = 2.0
        layer.bias.data[:] = 1.0
        x = Tensor(rng.normal(size=(8, 2, 4, 4)))
        out = layer(x)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), np.ones(2), atol=1e-6)

    def test_rejects_non_4d_input(self, rng):
        layer = BatchNorm2d(2)
        with pytest.raises(ValueError):
            layer(Tensor(rng.normal(size=(3, 2))))

    def test_gradcheck_training_mode(self, rng):
        layer = BatchNorm2d(2)
        x = Tensor(rng.normal(size=(4, 2, 3, 3)), requires_grad=True)
        ok, err = gradcheck(lambda x: layer(x), [x], atol=1e-3, rtol=1e-2)
        assert ok, err


class TestPoolingLayers:
    def test_max_pool_layer(self, rng):
        layer = MaxPool2d(2)
        out = layer(Tensor(rng.normal(size=(1, 2, 6, 6))))
        assert out.shape == (1, 2, 3, 3)

    def test_avg_pool_layer(self, rng):
        layer = AvgPool2d(2, stride=2)
        out = layer(Tensor(rng.normal(size=(1, 2, 6, 6))))
        assert out.shape == (1, 2, 3, 3)

    def test_global_avg_pool_layer(self, rng):
        layer = GlobalAvgPool2d()
        out = layer(Tensor(rng.normal(size=(3, 4, 5, 5))))
        assert out.shape == (3, 4)

    def test_flatten(self, rng):
        layer = Flatten()
        out = layer(Tensor(rng.normal(size=(2, 3, 4, 4))))
        assert out.shape == (2, 48)

    def test_identity(self, rng):
        layer = Identity()
        x = Tensor(rng.normal(size=(2, 3)))
        assert layer(x) is x


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = Tensor(rng.normal(size=(4, 4)))
        assert layer(x) is x

    def test_training_mode_zeroes_some_entries(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = Tensor(np.ones((100, 100)))
        out = layer(x)
        zero_fraction = float((out.data == 0).mean())
        assert 0.3 < zero_fraction < 0.7

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.5)

    def test_p_zero_is_identity(self, rng):
        layer = Dropout(0.0)
        x = Tensor(rng.normal(size=(3, 3)))
        assert layer(x) is x


class TestInitializers:
    def test_kaiming_normal_std(self):
        shape = (256, 128)
        w = init.kaiming_normal(shape, rng=np.random.default_rng(0))
        expected = np.sqrt(2.0 / 128)
        assert abs(w.std() - expected) / expected < 0.1

    def test_kaiming_uniform_bound(self):
        w = init.kaiming_uniform((64, 64), rng=np.random.default_rng(0))
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 64)
        assert np.abs(w).max() <= bound + 1e-12

    def test_xavier_normal_std(self):
        shape = (200, 100)
        w = init.xavier_normal(shape, rng=np.random.default_rng(0))
        expected = np.sqrt(2.0 / 300)
        assert abs(w.std() - expected) / expected < 0.15

    def test_conv_fan_in(self):
        w = init.kaiming_normal((16, 8, 3, 3), rng=np.random.default_rng(0))
        expected = np.sqrt(2.0 / (8 * 9))
        assert abs(w.std() - expected) / expected < 0.1

    def test_zeros_ones(self):
        assert np.all(init.zeros((3,)) == 0)
        assert np.all(init.ones((3,)) == 1)

    def test_uniform_range(self):
        w = init.uniform((1000,), low=-0.2, high=0.2, rng=np.random.default_rng(0))
        assert w.min() >= -0.2 and w.max() < 0.2
