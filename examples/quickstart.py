"""Quickstart: build, train and analyse a spiking network with skip connections.

This walks through the library bottom-up in about a minute of CPU time:

1. generate a synthetic event-based dataset (CIFAR-10-DVS stand-in),
2. build the single-block architecture from the paper's Fig. 1 analysis in
   both its ANN and SNN variants,
3. train the SNN with surrogate-gradient BPTT,
4. measure test accuracy, average firing rate, MACs and estimated energy,
5. show what adding skip connections changes.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ASC, BlockAdjacency
from repro.core.search_space import ArchitectureSpec
from repro.data import load_dataset
from repro.models import build_single_block_template
from repro.snn import FiringRateMonitor, MACCounter, TemporalRunner, estimate_energy
from repro.training import SNNTrainer, SNNTrainingConfig


def main() -> None:
    # ------------------------------------------------------------------
    # 1. data: synthetic CIFAR-10-DVS (event frames, 10 classes)
    # ------------------------------------------------------------------
    splits = load_dataset("cifar10-dvs", num_samples=200, image_size=12, num_steps=6, seed=0)
    print(splits.summary())

    # ------------------------------------------------------------------
    # 2. model: the paper's single-block architecture (4 conv layers)
    # ------------------------------------------------------------------
    template = build_single_block_template(input_channels=2, num_classes=splits.num_classes, channels=6)

    # the architecture's skip wiring is an adjacency matrix per block:
    # here we add three addition-type (ASC) skips into the final layer
    adjacency = BlockAdjacency.with_final_layer_skips(depth=4, n_skip=3, code=ASC)
    spec = ArchitectureSpec([adjacency], name="quickstart")
    print(f"architecture: {spec} — skips per layer {adjacency.num_skips_per_layer()}")

    snn = template.build(spec, spiking=True, rng=0)
    print(f"SNN parameters: {snn.num_parameters():,}")

    # ------------------------------------------------------------------
    # 3. train with surrogate-gradient BPTT
    # ------------------------------------------------------------------
    config = SNNTrainingConfig(
        epochs=5, batch_size=16, learning_rate=0.05, optimizer="sgd", momentum=0.9, num_steps=6, seed=0
    )
    trainer = SNNTrainer(config)
    history = trainer.fit_splits(snn, splits)
    print(f"training: {history.num_epochs} epochs, final train loss {history.train_loss[-1]:.3f}")

    # ------------------------------------------------------------------
    # 4. evaluate: accuracy, firing rate, MACs, energy
    # ------------------------------------------------------------------
    accuracy, stats = trainer.evaluate_with_firing_rate(snn, splits.test)
    print(f"test accuracy: {100 * accuracy:.2f}%")
    print(f"average firing rate: {stats.average_firing_rate_percent:.2f}%")

    macs = MACCounter(snn).count(splits.test.inputs[:1, 0]).total
    energy = estimate_energy(macs, stats.average_firing_rate, num_steps=config.num_steps)
    print(f"MACs per simulation step: {macs:,.0f}")
    print(
        f"estimated inference energy: SNN {energy.snn_energy_nj:.2f} nJ vs ANN {energy.ann_energy_nj:.2f} nJ "
        f"(ratio {energy.snn_to_ann_ratio:.2f})"
    )

    # ------------------------------------------------------------------
    # 5. compare against the skip-free baseline
    # ------------------------------------------------------------------
    baseline = template.build(template.default_architecture(), spiking=True, rng=0)
    baseline_trainer = SNNTrainer(config)
    baseline_trainer.fit_splits(baseline, splits)
    baseline_accuracy, baseline_stats = baseline_trainer.evaluate_with_firing_rate(baseline, splits.test)
    print(
        f"skip-free baseline: accuracy {100 * baseline_accuracy:.2f}%, "
        f"firing rate {baseline_stats.average_firing_rate_percent:.2f}%"
    )
    print(
        f"effect of 3 ASC skips: {100 * (accuracy - baseline_accuracy):+.2f}pp accuracy, "
        f"{baseline_stats.average_firing_rate_percent:.2f}% -> {stats.average_firing_rate_percent:.2f}% firing rate"
    )


if __name__ == "__main__":
    main()
