"""ANN→SNN adaptation via skip-connection optimization (the paper's pipeline).

This example runs the full Fig. 2 pipeline on one (model, dataset) pair:

1. build the ResNet-18-style template,
2. train the vanilla SNN conversion (the architecture's default residual wiring),
3. construct the search space of per-block adjacency matrices,
4. run Gaussian-process Bayesian optimization with UCB acquisition and weight
   sharing to find the skip configuration that minimises the accuracy drop,
5. compare against random search with the same evaluation budget,
6. print a Table-I-style row and the Fig.-3-style incumbent curves.

Run:  python examples/optimize_skip_connections.py            (default budget)
      REPRO_SCALE=smoke python examples/optimize_skip_connections.py   (fast)
"""

from __future__ import annotations

import os

from repro.core import BayesianOptimizer, RandomSearch, WeightStore
from repro.core.adapter import AdaptationConfig, SNNAdapter
from repro.core.objectives import AccuracyDropObjective
from repro.data import load_dataset
from repro.experiments.config import dataset_kwargs, get_scale, model_kwargs
from repro.experiments.reporting import format_series
from repro.models import get_template
from repro.training.snn_trainer import SNNTrainingConfig
from repro.training.trainer import TrainingConfig


def main() -> None:
    scale = get_scale(os.environ.get("REPRO_SCALE", "default"))
    print(f"experiment scale: {scale.name}")

    dataset = "cifar10-dvs"
    model = "resnet18"
    splits = load_dataset(dataset, **dataset_kwargs(scale, dataset))
    input_channels = splits.sample_shape[1]
    template = get_template(
        model, **model_kwargs(scale, model, input_channels=input_channels, num_classes=splits.num_classes)
    )
    space = template.search_space()
    print(f"{splits.summary()}")
    print(f"search space: {space.size():,} candidate architectures over {space.encoding_length()} skip positions")

    # ------------------------------------------------------------------
    # full adaptation pipeline (Table I quantities)
    # ------------------------------------------------------------------
    config = AdaptationConfig(
        ann_training=TrainingConfig(epochs=scale.ann_epochs, batch_size=scale.batch_size,
                                    learning_rate=scale.learning_rate, momentum=0.9, seed=scale.seed),
        snn_training=SNNTrainingConfig(epochs=scale.snn_epochs, batch_size=scale.batch_size,
                                       learning_rate=scale.learning_rate, momentum=0.9,
                                       num_steps=scale.num_steps, seed=scale.seed),
        candidate_finetune_epochs=scale.candidate_finetune_epochs,
        final_finetune_epochs=scale.final_finetune_epochs,
        bo_iterations=scale.bo_iterations,
        bo_initial_points=scale.bo_initial_points,
        seed=scale.seed,
    )
    adapter = SNNAdapter(template, splits, config)
    result = adapter.run()
    print()
    print("=== adaptation result (one Table-I row) ===")
    print(result.summary())
    print(f"best architecture: {result.best_spec}")
    print(f"skip counts by type: {result.best_spec.count_by_type()}")

    # ------------------------------------------------------------------
    # BO vs random search on the same budget (Fig. 3 flavour)
    # ------------------------------------------------------------------
    print()
    print("=== search comparison (Fig. 3 flavour) ===")
    budget = scale.search_iterations
    training = SNNTrainingConfig(
        epochs=scale.candidate_finetune_epochs, batch_size=scale.batch_size,
        learning_rate=scale.learning_rate, momentum=0.9, num_steps=scale.num_steps, seed=scale.seed,
    )
    bo_objective = AccuracyDropObjective(template, splits, training, weight_store=WeightStore(), measure_firing_rate=False)
    bo = BayesianOptimizer(space, bo_objective, initial_points=scale.bo_initial_points, rng=scale.seed)
    bo_history = bo.optimize(max(budget - scale.bo_initial_points, 1))

    rs_objective = AccuracyDropObjective(template, splits, training, measure_firing_rate=False)
    rs = RandomSearch(space, rs_objective, rng=scale.seed + 1)
    rs_history = rs.optimize(budget)

    print(format_series("Our HPO (incumbent accuracy)      ", bo_history.incumbent_accuracies()))
    print(format_series("random search (incumbent accuracy)", rs_history.incumbent_accuracies()))
    print(
        f"final: BO {100 * bo_history.incumbent_accuracies()[-1]:.2f}% "
        f"vs RS {100 * rs_history.incumbent_accuracies()[-1]:.2f}% "
        f"after {budget} evaluations each"
    )


if __name__ == "__main__":
    main()
