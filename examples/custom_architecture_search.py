"""Defining a custom architecture and searching its skip connections.

The templates shipped with the library (ResNet-18, DenseNet-121, MobileNetV2,
single-block) are instances of a general mechanism: any topology described as
a :class:`~repro.models.template.NetworkTemplate` — stem, blocks of
:class:`~repro.models.blocks.LayerSpec` layers, transitions, head — gets a
skip-connection search space and the full ANN→SNN adaptation pipeline for
free.  This example

1. defines a custom 3-block hybrid architecture (a dense block followed by two
   residual-style blocks, one of them with a depthwise layer),
2. derives its search space and inspects the admissible connection types,
3. runs a short Bayesian-optimization search with an *energy-aware* objective
   (accuracy drop + firing-rate penalty),
4. prints the best architecture found and its skip layout per block.

Run:  python examples/custom_architecture_search.py
"""

from __future__ import annotations

from repro.core import ASC, DSC, BlockAdjacency
from repro.core.bayes_opt import BayesianOptimizer
from repro.core.objectives import AccuracyDropObjective, EnergyAwareObjective
from repro.core.weight_sharing import WeightStore
from repro.core.adjacency import connection_name
from repro.data import load_dataset
from repro.models.blocks import BlockSpec, LayerSpec
from repro.models.template import NetworkTemplate
from repro.training.snn_trainer import SNNTrainingConfig


def build_custom_template(num_classes: int) -> NetworkTemplate:
    """A hybrid topology: one dense-style block, one residual block, one bottleneck."""
    dense_block = BlockSpec(
        in_channels=6,
        layers=[LayerSpec("conv3x3", 6) for _ in range(3)],
        name="dense_stage",
    )
    residual_block = BlockSpec(
        in_channels=8,
        layers=[LayerSpec("conv3x3", 8), LayerSpec("conv3x3", 8)],
        name="residual_stage",
    )
    bottleneck_block = BlockSpec(
        in_channels=10,
        layers=[LayerSpec("conv1x1", 10), LayerSpec("dwconv3x3", 10), LayerSpec("conv1x1", 12)],
        name="bottleneck_stage",
    )
    return NetworkTemplate(
        name="hybridnet",
        input_channels=2,
        num_classes=num_classes,
        stem_channels=6,
        block_specs=[dense_block, residual_block, bottleneck_block],
        transition_channels=[8, 10, None],
        default_adjacencies=[
            BlockAdjacency.fully_connected(3, code=DSC),             # dense wiring
            BlockAdjacency(2).with_connection(0, 2, ASC),            # residual shortcut
            BlockAdjacency(3).with_connection(0, 3, ASC),            # inverted-residual shortcut
        ],
    )


def main() -> None:
    splits = load_dataset("cifar10-dvs", num_samples=160, image_size=12, num_steps=5, seed=0)
    template = build_custom_template(splits.num_classes)
    space = template.search_space()

    print(f"custom template {template.name!r}: {len(template.block_specs)} blocks, "
          f"{template.build(rng=0).num_parameters():,} parameters")
    print(f"search space: {space.size():,} architectures over {space.encoding_length()} skip positions")
    for info in space.block_infos:
        restricted = [pos for pos in info.positions() if len(info.allowed_at(pos)) < 3]
        note = f", DSC forbidden at {restricted}" if restricted else ""
        print(f"  block {info.name!r}: depth {info.depth}, {len(info.positions())} positions{note}")

    # energy-aware objective: minimise accuracy drop + 0.2 * firing rate
    base = AccuracyDropObjective(
        template=template,
        splits=splits,
        training_config=SNNTrainingConfig(epochs=2, batch_size=16, learning_rate=0.05,
                                          momentum=0.9, num_steps=5, seed=0),
        weight_store=WeightStore(),
    )
    objective = EnergyAwareObjective(base, firing_rate_weight=0.2)

    optimizer = BayesianOptimizer(space, objective, acquisition="ucb", initial_points=3,
                                  candidate_pool_size=48, rng=0)
    history = optimizer.optimize(5)

    best = history.best()
    print()
    print(f"evaluated {history.num_evaluations} architectures")
    print(f"best objective value {best.objective_value:.4f} "
          f"(val accuracy {100 * best.accuracy:.2f}%, firing rate {100 * best.firing_rate:.2f}%)")
    print("best skip layout:")
    for block_info, adjacency in zip(space.block_infos, best.spec.blocks):
        print(f"  {block_info.name}:")
        for layer_index in range(adjacency.depth):
            sources = adjacency.sources_of(layer_index)
            if sources:
                described = ", ".join(f"node {src} ({connection_name(code)})" for src, code in sources)
            else:
                described = "sequential only"
            print(f"    layer {layer_index}: {described}")


if __name__ == "__main__":
    main()
