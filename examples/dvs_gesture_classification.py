"""Event-based gesture recognition with a spiking MobileNetV2.

DVS128 Gesture is the paper's third benchmark: 11 hand gestures whose classes
are defined by *motion over time*, which is exactly the regime where spiking
networks with temporal dynamics are a natural fit.  This example

1. generates the synthetic DVS128-Gesture stand-in (event frames of
   class-defining motion trajectories),
2. builds the MobileNetV2-style spiking network (inverted residual blocks with
   depthwise convolutions — note that the search space automatically forbids
   concatenation skips into depthwise layers),
3. trains it with Adam (the optimizer the paper uses for this dataset),
4. reports per-class accuracy and the firing-rate profile per layer,
5. shows the effect of the skip configuration on the same task.

Run:  python examples/dvs_gesture_classification.py
"""

from __future__ import annotations

import numpy as np

from repro.data import load_dataset
from repro.data.synthetic_gesture import GESTURE_NAMES
from repro.models import get_template
from repro.nn.losses import confusion_matrix
from repro.snn import FiringRateMonitor
from repro.tensor import Tensor, no_grad
from repro.training import SNNTrainer, SNNTrainingConfig


def main() -> None:
    # ------------------------------------------------------------------
    # data: synthetic DVS128 Gesture (11 motion classes, ON/OFF event frames)
    # ------------------------------------------------------------------
    splits = load_dataset("dvs128-gesture", num_samples=330, image_size=12, num_steps=8, seed=0)
    print(splits.summary())

    # ------------------------------------------------------------------
    # model: MobileNetV2-style SNN
    # ------------------------------------------------------------------
    template = get_template(
        "mobilenetv2", input_channels=2, num_classes=splits.num_classes, stage_channels=(6, 10)
    )
    space = template.search_space()
    print(f"search space: {space.size()} candidates; depthwise layers restricted to ASC-only positions")

    model = template.build(spiking=True, rng=0)
    print(f"parameters: {model.num_parameters():,}")

    # ------------------------------------------------------------------
    # training (Adam, as in the paper's DVS128 Gesture setup)
    # ------------------------------------------------------------------
    config = SNNTrainingConfig(
        epochs=6, batch_size=16, learning_rate=0.01, optimizer="adam", num_steps=8, seed=0
    )
    trainer = SNNTrainer(config)
    history = trainer.fit_splits(model, splits)
    print(f"trained {history.num_epochs} epochs; best val accuracy {100 * history.best_val_accuracy:.2f}%")

    # ------------------------------------------------------------------
    # evaluation: accuracy, confusion, firing-rate profile
    # ------------------------------------------------------------------
    runner = trainer.make_runner(model)
    monitor = FiringRateMonitor(model)
    with monitor, no_grad():
        scores = runner(splits.test.inputs).data
    predictions = scores.argmax(axis=1)
    labels = splits.test.labels
    accuracy = float((predictions == labels).mean())
    print(f"test accuracy: {100 * accuracy:.2f}%")

    matrix = confusion_matrix(scores, labels, splits.num_classes)
    per_class = matrix.diagonal() / np.maximum(matrix.sum(axis=1), 1)
    print("per-gesture accuracy:")
    for name, value in zip(GESTURE_NAMES, per_class):
        print(f"  {name:>16s}: {100 * value:6.2f}%")

    stats = monitor.statistics()
    print(f"network average firing rate: {stats.average_firing_rate_percent:.2f}%")
    print("firing rate per spiking layer:")
    for layer_name, rate in sorted(stats.per_layer_rate.items()):
        print(f"  {layer_name or '<stem>':>40s}: {100 * rate:6.2f}%")

    # ------------------------------------------------------------------
    # what does the default inverted-residual shortcut buy?
    # ------------------------------------------------------------------
    no_skip = template.build(space.default_spec(), spiking=True, rng=0)
    no_skip_trainer = SNNTrainer(config)
    no_skip_trainer.fit_splits(no_skip, splits)
    no_skip_accuracy = no_skip_trainer.evaluate(no_skip, splits.test)
    print(
        f"without the inverted-residual shortcut: {100 * no_skip_accuracy:.2f}% "
        f"({100 * (accuracy - no_skip_accuracy):+.2f}pp from the default ASC skip)"
    )


if __name__ == "__main__":
    main()
