"""DSC vs ASC: firing rate, MACs and energy — the Section III-A trade-off.

The paper's key qualitative observation is that the two skip-connection types
pay for accuracy in different currencies:

* addition-type (ASC) skips sum spike trains, which *raises the firing rate*
  (more synaptic events, more dynamic energy) but leaves the MAC count alone;
* DenseNet-like (DSC) skips concatenate feature maps, which *raises the MAC
  count* of the consuming layer but keeps firing rates lower.

This example sweeps the number of skip connections for both types on the
single-block model (as in Fig. 1), trains each configuration briefly, and
prints accuracy, firing rate, MACs per step and the estimated inference energy
using the standard 45 nm per-operation figures.

Run:  python examples/firing_rate_energy_analysis.py
      REPRO_SCALE=smoke python examples/firing_rate_energy_analysis.py   (fast)
"""

from __future__ import annotations

import os

from repro.experiments import format_figure1, get_scale, run_figure1
from repro.experiments.config import dataset_kwargs
from repro.data import load_dataset
from repro.snn import estimate_energy


def main() -> None:
    scale = get_scale(os.environ.get("REPRO_SCALE", "default"))
    print(f"experiment scale: {scale.name}")
    splits = load_dataset("cifar10-dvs", **dataset_kwargs(scale, "cifar10-dvs"))
    print(splits.summary())
    print()

    results = {}
    for kind in ("dsc", "asc"):
        results[kind] = run_figure1(kind, scale=scale, splits=splits, seed=scale.seed)
        print(format_figure1(results[kind]))
        print()

    print("energy estimate at the largest skip budget (n_skip = 3):")
    header = f"{'type':>6s} | {'SNN acc (%)':>12s} | {'firing rate (%)':>16s} | {'MACs/step':>12s} | {'energy (nJ)':>12s}"
    print(header)
    print("-" * len(header))
    for kind, result in results.items():
        point = result.points[-1]
        energy = estimate_energy(point.macs_per_step, point.firing_rate, scale.num_steps)
        print(
            f"{kind.upper():>6s} | {100 * point.snn_accuracy:12.2f} | {100 * point.firing_rate:16.2f} | "
            f"{point.macs_per_step:12,.0f} | {energy.snn_energy_nj:12.2f}"
        )

    dsc_last = results["dsc"].points[-1]
    asc_last = results["asc"].points[-1]
    print()
    print("take-away (matches the paper's Section III-A discussion):")
    print(
        f"  * ASC raises the firing rate more ({100 * asc_last.firing_rate:.2f}% vs "
        f"{100 * dsc_last.firing_rate:.2f}% for DSC at n_skip=3)"
        if asc_last.firing_rate >= dsc_last.firing_rate
        else "  * (at this scale the ASC/DSC firing-rate ordering did not separate — increase REPRO_SCALE)"
    )
    print(
        f"  * DSC raises the MAC count instead ({dsc_last.macs_per_step:,.0f} vs {asc_last.macs_per_step:,.0f} MACs/step)"
    )


if __name__ == "__main__":
    main()
