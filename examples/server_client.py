"""Client walkthrough for the HTTP serving layer — stdlib urllib only.

Against a running server (or an in-process one it boots itself), this

1. checks ``/healthz``,
2. submits a small multi-objective search job (``POST /jobs``),
3. streams the job's progress events live (``GET /jobs/<id>/events``,
   newline-delimited JSON) until the job reaches a terminal state,
4. fetches the current Pareto front of the accumulated evaluation store
   (``GET /pareto``),
5. asks for the best architecture under an energy budget
   (``GET /recommend?energy_budget=..``) — answered instantly from cache.

Run against an in-process server (boots one on a free port, smoke scale):

    PYTHONPATH=src python examples/server_client.py

or against an already-running ``repro serve``:

    PYTHONPATH=src python examples/server_client.py http://localhost:8000

The endpoint catalog is documented in docs/server.md.
"""

from __future__ import annotations

import json
import sys
import tempfile
import urllib.error
import urllib.request


def get_json(url: str) -> dict:
    """GET a JSON document; 4xx bodies are JSON too, so decode them as well."""
    try:
        with urllib.request.urlopen(url) as reply:
            return json.load(reply)
    except urllib.error.HTTPError as error:
        return json.loads(error.read().decode("utf-8"))


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as reply:
        return json.load(reply)


def stream_events(base_url: str, job_id: str) -> dict:
    """Follow a job's ndjson event stream; returns the final state event."""
    last_state = {}
    with urllib.request.urlopen(f"{base_url}/jobs/{job_id}/events") as stream:
        for raw_line in stream:
            event = json.loads(raw_line.decode("utf-8"))
            if event["type"] == "evaluation":
                objectives = event.get("objectives") or {
                    "accuracy": event.get("accuracy")
                }
                rendered = ", ".join(
                    f"{name}={value:.4g}" for name, value in objectives.items()
                )
                print(f"  eval {event['completed']}: {event['encoding']}  {rendered}")
            elif event["type"] == "state":
                last_state = event
                print(f"  state -> {event['state']}")
    return last_state


def main() -> None:
    server = None
    if len(sys.argv) > 1:
        base_url = sys.argv[1].rstrip("/")
    else:
        # no URL given: boot a server in-process on a free port
        from repro.server import ReproServer, ServerConfig

        server = ReproServer(
            ServerConfig(cache_dir=tempfile.mkdtemp(prefix="repro-serve-"), port=0)
        ).start()
        base_url = server.url
        print(f"booted in-process server at {base_url}")

    try:
        health = get_json(f"{base_url}/healthz")
        print(f"health: {health['status']}, {health['store']['rows']} cached rows")

        print("submitting a smoke accuracy/energy search job ...")
        job = post_json(
            f"{base_url}/jobs",
            {
                "objectives": ["accuracy", "energy"],
                "scale": "smoke",
                "model": "single_block",
                "iterations": 4,
                "seed": 0,
            },
        )
        print(f"  accepted: {job['id']} ({job['kind']}, {job['evals_total']} evals)")

        final = stream_events(base_url, job["id"])
        if final.get("state") != "completed":
            print(f"job ended in state {final.get('state')}: {final.get('error')}")
            return

        front = get_json(f"{base_url}/pareto?objectives=accuracy,energy")
        print(f"pareto front over {front['rows_considered']} cached rows:")
        for point in front["front"]:
            print(f"  {point['encoding']}  {point['objectives']}")

        # pick a budget that the front's median energy satisfies, so the demo
        # recommendation always finds something
        energies = sorted(p["objectives"]["energy"] for p in front["front"])
        budget = energies[len(energies) // 2]
        reply = get_json(f"{base_url}/recommend?energy_budget={budget}")
        if reply["found"]:
            best = reply["recommendation"]
            print(
                f"best under energy<={budget:.4g}: {best['encoding']} "
                f"(accuracy {best['metrics']['val_accuracy']:.4f}, "
                f"energy {best['metrics']['energy_nj']:.4g} nJ)"
            )
        else:
            print(f"no cached architecture fits energy<={budget:.4g}: {reply['reason']}")
    finally:
        if server is not None:
            server.stop()
            print("server drained and stopped")


if __name__ == "__main__":
    main()
