"""Repo tooling: CI gates (:mod:`tools.bench_gate`), docs checks
(:mod:`tools.check_docs`) and the repo-specific static analysis pass
(:mod:`tools.analyze`, aka ``repro-lint``)."""
