"""Keep the docs honest: link-check and doctest `docs/` and README.md.

Two failure modes silently rot prose documentation, and this script (run by
the CI `docs` job) turns both into build failures:

* **dead relative links** — every markdown link or image pointing at a
  repo-relative path must resolve to an existing file or directory
  (external ``http(s)``/``mailto`` URLs and pure ``#anchor`` links are not
  checked — CI must not depend on the network);
* **stale code examples** — every ``>>>`` example in the checked files is
  executed with :mod:`doctest`, so an API rename breaks the doc visibly.

Run locally::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: files whose links and doctests are checked
CHECKED_FILES = (
    "README.md",
    "docs/architecture.md",
    "docs/caching.md",
    "docs/benchmarks.md",
    "docs/multi_objective.md",
)

#: markdown inline links/images: [text](target) / ![alt](target)
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: link targets that are not repo-relative paths
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_links(path: Path) -> list:
    """Dead repo-relative link targets in one markdown file."""
    errors = []
    for target in LINK_PATTERN.findall(path.read_text()):
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: dead link -> {target}")
    return errors


def check_doctests(path: Path) -> list:
    """Failing ``>>>`` examples in one markdown file."""
    text = path.read_text()
    if ">>>" not in text:
        return []
    results = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
        verbose=False,
    )
    if results.failed:
        return [f"{path.relative_to(REPO_ROOT)}: {results.failed}/{results.attempted} doctests failed"]
    return []


def main() -> int:
    """Check every documented file; returns a process exit code."""
    errors = []
    checked = 0
    for name in CHECKED_FILES:
        path = REPO_ROOT / name
        if not path.exists():
            errors.append(f"missing documented file: {name}")
            continue
        checked += 1
        errors.extend(check_links(path))
        errors.extend(check_doctests(path))
    if errors:
        print("\n".join(errors))
        return 1
    print(f"docs OK: {checked} files, links resolve, doctests pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
