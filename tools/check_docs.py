"""Keep the docs honest: link-check, anchor-check and doctest `docs/` and README.md.

Three failure modes silently rot prose documentation, and this script (run by
the CI `docs` job) turns each into a build failure:

* **dead relative links** — every markdown link or image pointing at a
  repo-relative path must resolve to an existing file or directory
  (external ``http(s)``/``mailto`` URLs are not checked — CI must not
  depend on the network);
* **dead intra-doc anchors** — every ``#fragment`` (same-file ``#anchor``
  links and cross-file ``file.md#anchor`` links between checked files) must
  match a heading's GitHub-style slug in the target file, so a renamed
  section heading breaks every link pointing at it visibly (the serving
  layer's endpoint catalog in ``docs/server.md`` is linked by anchor from
  several places);
* **stale code examples** — every ``>>>`` example in the checked files is
  executed with :mod:`doctest`, so an API rename breaks the doc visibly.

Run locally::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: files whose links and doctests are checked
CHECKED_FILES = (
    "README.md",
    "docs/architecture.md",
    "docs/caching.md",
    "docs/benchmarks.md",
    "docs/multi_objective.md",
    "docs/observability.md",
    "docs/server.md",
)

#: markdown inline links/images: [text](target) / ![alt](target)
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: markdown ATX headings (the anchors GitHub derives slugs from)
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$", re.MULTILINE)

#: fenced code blocks — headings inside them are not anchors
FENCE_PATTERN = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)

#: link targets that are never repo-relative paths
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def heading_slug(text: str) -> str:
    """GitHub's anchor slug for one heading line.

    Inline markup is stripped (``code``, *emphasis*, [link](target) keeps the
    link text), then: lowercase, drop everything but word characters, spaces
    and hyphens, replace spaces with hyphens.  Matches GitHub's renderer for
    the heading shapes used in this repo (including ``GET /pareto``-style
    endpoint headings, whose slashes simply vanish: ``get-pareto``).
    """
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = re.sub(r"[`*_]", "", text)
    slug = re.sub(r"[^\w\- ]", "", text.strip().lower())
    return slug.replace(" ", "-")


def file_anchors(path: Path) -> set:
    """Every anchor one markdown file defines (slugs, with -1/-2 duplicates)."""
    text = FENCE_PATTERN.sub("", path.read_text())
    anchors: set = set()
    counts: dict = {}
    for match in HEADING_PATTERN.finditer(text):
        slug = heading_slug(match.group(1))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def check_links(path: Path, anchor_cache: dict) -> list:
    """Dead repo-relative link targets and dead anchors in one markdown file."""
    errors = []
    for target in LINK_PATTERN.findall(path.read_text()):
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        relative, _, anchor = target.partition("#")
        resolved = (path.parent / relative).resolve() if relative else path.resolve()
        if relative and not resolved.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: dead link -> {target}")
            continue
        if not anchor:
            continue
        # anchors are only checkable in markdown files we can parse headings
        # from; anchors into other file types are left to reviewers
        if resolved.suffix != ".md" or not resolved.is_file():
            continue
        if resolved not in anchor_cache:
            anchor_cache[resolved] = file_anchors(resolved)
        if anchor.lower() not in anchor_cache[resolved]:
            errors.append(f"{path.relative_to(REPO_ROOT)}: dead anchor -> {target}")
    return errors


def check_doctests(path: Path) -> list:
    """Failing ``>>>`` examples in one markdown file."""
    text = path.read_text()
    if ">>>" not in text:
        return []
    results = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
        verbose=False,
    )
    if results.failed:
        return [f"{path.relative_to(REPO_ROOT)}: {results.failed}/{results.attempted} doctests failed"]
    return []


def main() -> int:
    """Check every documented file; returns a process exit code."""
    errors = []
    checked = 0
    anchor_cache: dict = {}
    for name in CHECKED_FILES:
        path = REPO_ROOT / name
        if not path.exists():
            errors.append(f"missing documented file: {name}")
            continue
        checked += 1
        errors.extend(check_links(path, anchor_cache))
        errors.extend(check_doctests(path))
    if errors:
        print("\n".join(errors))
        return 1
    print(f"docs OK: {checked} files, links and anchors resolve, doctests pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
