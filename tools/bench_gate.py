"""Regression gate over the substrate benchmark artifact.

Compares the JSON emitted by ``benchmarks/bench_substrate.py`` against the
committed baseline ``benchmarks/BENCH_5.json`` and fails (exit code 1) when a
substrate hot path regressed.  Two kinds of check:

* **speedup ratios** (``<case>.speedup`` — fast path over autograd path) are
  dimensionless, so they transfer across machines: the gate fails when a
  ratio drops more than ``--threshold`` (default 30%) below the baseline, or
  below the hard acceptance floors (the inference-mode LIF step and conv2d
  forward must stay at least 2x faster than the autograd path, the
  event-driven sparse evaluation at firing rate 0.01 at least 2x faster
  than the dense fast path, and the fused BPTT training step at least 1.8x
  faster than the recorded-graph autograd step) — and the disabled-tracing
  overhead ratio must stay under its hard ceiling (1.02x: span
  instrumentation may cost at most 2% of a whole-model evaluation while
  tracing is off);
* **absolute timings** (``*_ms`` / ``ms``) are hardware-dependent — CI
  runners differ from the baseline machine — so by default they are only
  *reported*; pass ``--absolute`` to gate them too (useful when baseline and
  current run on the same box, e.g. a local pre-merge check).

Usage (what the CI bench-smoke job runs)::

    PYTHONPATH=src python benchmarks/bench_substrate.py --smoke --output bench-substrate.json
    python tools/bench_gate.py --baseline benchmarks/BENCH_5.json --current bench-substrate.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

#: hard floors pinned by acceptance criteria: the PR-5 inference fast paths
#: must stay at least 2x faster than autograd, the PR-8 event-driven sparse
#: evaluation must stay at least 2x faster than the dense fast path in the
#: deep-sparse regime (firing rate 0.01), and the PR-10 fused BPTT step must
#: stay at least 1.8x faster than the recorded-graph autograd step (the
#: committed BENCH_10.json baseline measures ~2.2x; the floor leaves noise
#: headroom while still catching a fused-path regression to graph speed)
MIN_SPEEDUPS: Dict[str, float] = {
    "conv2d_forward": 2.0,
    "lif_step": 2.0,
    "sparse_eval_rate_0.01": 2.0,
    "bptt_step": 1.8,
}

#: hard ceilings on dimensionless overhead ratios, keyed by flattened metric
#: path: the span instrumentation must cost under 2% of a whole-model SNN
#: evaluation while tracing is disabled (the default state).  Ceilings are
#: checked against the current artifact only — they do not need a baseline.
MAX_RATIOS: Dict[str, float] = {
    "tracing_overhead.overhead_ratio": 1.02,
}


def _numeric_leaves(payload: Dict, prefix: str = "") -> Dict[str, float]:
    """Flatten nested dicts to ``case.metric`` -> float (non-numerics dropped)."""
    flat: Dict[str, float] = {}
    for key, value in payload.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_numeric_leaves(value, prefix=f"{path}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[path] = float(value)
    return flat


def gate(
    baseline: Dict,
    current: Dict,
    threshold: float = 0.30,
    gate_absolute: bool = False,
) -> List[str]:
    """Return the list of gate failures (empty = pass)."""
    failures: List[str] = []
    base_flat = _numeric_leaves(baseline)
    cur_flat = _numeric_leaves(current)

    for case, floor in MIN_SPEEDUPS.items():
        key = f"{case}.speedup"
        value = cur_flat.get(key)
        if value is None:
            failures.append(f"{key}: missing from the current artifact")
        elif value < floor:
            failures.append(f"{key}: {value:.2f}x is below the acceptance floor {floor:.1f}x")

    for key, ceiling in MAX_RATIOS.items():
        value = cur_flat.get(key)
        if value is None:
            failures.append(f"{key}: missing from the current artifact")
        elif value > ceiling:
            failures.append(f"{key}: {value:.4f}x exceeds the acceptance ceiling {ceiling:.2f}x")

    for key, base_value in sorted(base_flat.items()):
        if key not in cur_flat:
            if key.endswith(".speedup"):
                failures.append(f"{key}: present in baseline but missing from the current artifact")
            continue
        value = cur_flat[key]
        if key.endswith(".speedup"):
            # ratios regress when they shrink
            if base_value > 0 and value < base_value * (1.0 - threshold):
                failures.append(
                    f"{key}: {value:.2f}x regressed >{threshold:.0%} vs baseline {base_value:.2f}x"
                )
        elif gate_absolute and (key.endswith("_ms") or key.endswith(".ms")):
            # timings regress when they grow
            if base_value > 0 and value > base_value * (1.0 + threshold):
                failures.append(
                    f"{key}: {value:.3f} ms regressed >{threshold:.0%} vs baseline {base_value:.3f} ms"
                )
    return failures


def format_comparison(baseline: Dict, current: Dict) -> str:
    """Side-by-side report of every shared numeric metric."""
    base_flat = _numeric_leaves(baseline)
    cur_flat = _numeric_leaves(current)
    lines = [f"{'metric':<32} {'baseline':>12} {'current':>12} {'delta':>8}"]
    for key in sorted(set(base_flat) & set(cur_flat)):
        base_value, value = base_flat[key], cur_flat[key]
        delta = (value - base_value) / base_value if base_value else float("inf")
        lines.append(f"{key:<32} {base_value:>12.3f} {value:>12.3f} {delta:>+7.0%}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Gate entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description="Gate substrate benchmark regressions")
    parser.add_argument("--baseline", default="benchmarks/BENCH_5.json", help="committed baseline JSON")
    parser.add_argument("--current", required=True, help="freshly produced benchmark JSON")
    parser.add_argument(
        "--threshold", type=float, default=0.30, help="relative regression tolerance (default 0.30)"
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="also gate absolute *_ms timings (only meaningful on the baseline machine)",
    )
    args = parser.parse_args(argv)

    for label, path in (("baseline", args.baseline), ("current", args.current)):
        if not Path(path).is_file():
            print(
                f"bench gate: {label} file {path!r} does not exist — refusing to "
                "gate against nothing (was the benchmark artifact renamed or the "
                "bench step skipped?)",
                file=sys.stderr,
            )
            return 1
    baseline = json.loads(Path(args.baseline).read_text())
    current = json.loads(Path(args.current).read_text())

    print(format_comparison(baseline, current))
    failures = gate(baseline, current, threshold=args.threshold, gate_absolute=args.absolute)
    if failures:
        print("\nBENCH GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
