"""Report rendering: human-readable text and machine-readable JSON.

The text reporter is what developers read locally and in CI logs; the JSON
reporter is what CI archives as an artifact (``--output repro-lint.json``) so
a failing run can be inspected without re-running the analyzer.
"""

from __future__ import annotations

import json
from typing import IO

from tools.analyze.core import Report


def render_text(report: Report, verbose: bool = False) -> str:
    """Human-readable report; one finding per line, grep-friendly."""
    lines = []
    for finding in report.findings:
        lines.append(finding.format())
    if report.baselined:
        lines.append("")
        lines.append(f"baselined (grandfathered, not failing): {len(report.baselined)}")
        if verbose:
            for finding in report.baselined:
                lines.append(f"  {finding.format()}")
    if report.suppressed and verbose:
        lines.append("")
        lines.append(f"suppressed inline: {len(report.suppressed)}")
        for finding, suppression in report.suppressed:
            lines.append(f"  {finding.format()}  [reason: {suppression.reason}]")
    for entry in report.stale_baseline:
        lines.append(
            "stale baseline entry (finding no longer present — remove it from "
            f"baseline.json): {entry.get('rule')} {entry.get('path')} "
            f"[{entry.get('fingerprint')}]"
        )
    lines.append("")
    status = "FAILED" if report.exit_code else "ok"
    lines.append(
        f"repro-lint: {status} — {len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, {len(report.suppressed)} suppressed, "
        f"{len(report.stale_baseline)} stale baseline entr(y/ies); "
        f"{report.files_scanned} file(s), {len(report.rules_run)} rule(s)"
    )
    return "\n".join(lines).lstrip("\n")


def render_json(report: Report) -> str:
    return json.dumps(report.to_dict(), indent=2) + "\n"


def emit(report: Report, fmt: str, stream: IO[str], verbose: bool = False) -> None:
    if fmt == "json":
        stream.write(render_json(report))
    else:
        stream.write(render_text(report, verbose=verbose) + "\n")
