"""Command line interface for repro-lint.

Run from the repository root::

    python -m tools.analyze                      # analyze the default paths
    python -m tools.analyze src tools --format json
    python -m tools.analyze --list-rules
    repro lint -- --list-rules                   # via the repro CLI

Exit code 0 means no actionable findings and no stale baseline entries;
1 means the run failed (findings, stale baseline, or bad usage).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from tools.analyze.core import Report, all_rules, run_analysis
from tools.analyze.reporters import emit, render_json

#: analyzed when no paths are given (tests are exercised via fixtures instead:
#: lint fixtures deliberately violate the rules)
DEFAULT_PATHS = ("src", "tools", "benchmarks", "examples")

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="repro-lint: repo-specific static analysis for this codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="directory findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="additionally write the full JSON report to FILE (for CI artifacts)",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        metavar="FILE",
        help="baseline file of grandfathered findings (default: %(default)s)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather every current finding",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined and suppressed findings in text output",
    )
    return parser


def _split(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, rule_cls in sorted(all_rules().items()):
            print(f"{name}: {rule_cls.description}")
        return 0

    paths = args.paths or [p for p in DEFAULT_PATHS if Path(p).exists()]
    if not paths:
        parser.error("no paths to analyze (run from the repository root)")
    baseline = None if args.no_baseline else Path(args.baseline)
    try:
        report: Report = run_analysis(
            [Path(p) for p in paths],
            root=Path(args.root) if args.root else None,
            select=_split(args.select),
            ignore=_split(args.ignore),
            baseline_path=baseline,
            update_baseline=args.update_baseline,
        )
    except ValueError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 1

    emit(report, args.format, sys.stdout, verbose=args.verbose)
    if args.output:
        Path(args.output).write_text(render_json(report), encoding="utf-8")
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
