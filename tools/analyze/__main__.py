"""Entry point for ``python -m tools.analyze``."""

import sys

from tools.analyze.cli import main

sys.exit(main())
