"""The repro-lint engine: modules, rules, suppressions, baseline, runner.

Design notes
------------

* **Rules** are small classes registered with :func:`register`.  A per-module
  :class:`Rule` sees one parsed file at a time; a :class:`ProjectRule` sees
  the whole parsed corpus at once (needed for cross-file contracts like the
  store row schema, whose writer and readers live in different modules).
* **Suppressions** are inline comments of the form
  ``# repro-lint: disable=<rule>[,<rule>...] (<reason>)``.  The reason is
  mandatory: a suppression without one does not suppress anything and is
  itself reported (rule ``bad-suppression``), so every grandfathered
  exception in the codebase documents *why* the invariant does not apply.
  A trailing comment covers findings on its own line; a standalone comment
  line covers the next line.
* **Baseline**: ``baseline.json`` holds fingerprints of grandfathered
  findings.  Matched findings are reported as baselined (exit 0); a baseline
  entry with no matching finding is *stale* and fails the run, so the
  baseline can only shrink — it cannot quietly absorb regressions.
* Fingerprints hash ``rule | path | message`` (no line numbers), so moving
  code around does not churn the baseline.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

#: severity levels, most severe first (both fail the run; ``warning`` exists
#: so a future rule can be introduced in report-only mode via ``--ignore``)
SEVERITIES = ("error", "warning")

_SUPPRESSION_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-]+)\s*(.*)$")
_REASON_RE = re.compile(r"\((.+)\)\s*$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific location."""

    rule: str
    path: str  # posix path relative to the analysis root
    line: int
    message: str
    severity: str = "error"

    def fingerprint(self) -> str:
        """Stable identity used by the baseline (line numbers excluded)."""
        digest = hashlib.sha256(f"{self.rule}|{self.path}|{self.message}".encode("utf-8"))
        return digest.hexdigest()[:16]

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
            "fingerprint": self.fingerprint(),
        }


@dataclass
class Suppression:
    """One parsed ``# repro-lint: disable=...`` comment."""

    line: int  # line the suppression covers (not necessarily the comment line)
    rules: Tuple[str, ...]
    reason: str


@dataclass
class Module:
    """One parsed source file plus its suppression table."""

    path: Path
    display_path: str
    text: str
    tree: ast.Module
    #: covered line -> suppression
    suppressions: Dict[int, Suppression] = field(default_factory=dict)


class Rule:
    """Base class for per-module rules.  Subclass, set ``name``, implement
    :meth:`check`, decorate with :func:`register`."""

    name: str = ""
    description: str = ""
    severity: str = "error"

    def check(self, module: Module) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: object, message: str) -> Finding:
        line = getattr(node, "lineno", node if isinstance(node, int) else 0)
        return Finding(
            rule=self.name,
            path=module.display_path,
            line=int(line),
            message=message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """A rule that needs the whole parsed corpus (cross-file contracts)."""

    def check(self, module: Module) -> Iterator[Finding]:  # pragma: no cover - unused
        return iter(())

    def check_project(self, modules: Sequence[Module]) -> Iterator[Finding]:
        raise NotImplementedError


_RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ValueError(f"rule class {cls.__name__} must set a name")
    if cls.name in _RULES:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _RULES[cls.name] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """Name -> class for every registered rule (rule modules imported lazily)."""
    # deferred import: tools.analyze.rules registers every rule on import, and
    # importing it at module scope would make core <-> rules circular
    import tools.analyze.rules  # pyflakes: intentional side-effect import

    _ = tools.analyze.rules
    return dict(_RULES)


# ---------------------------------------------------------------------------
# suppression parsing
# ---------------------------------------------------------------------------

def parse_suppressions(
    text: str, display_path: str
) -> Tuple[Dict[int, Suppression], List[Finding]]:
    """Extract suppression comments; malformed ones become findings.

    A suppression must carry a parenthesised reason.  Without one it is
    ignored *and* reported, so a lazy reason-less ``disable=x`` comment can
    never silence a rule.
    """
    suppressions: Dict[int, Suppression] = {}
    problems: List[Finding] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match is None:
            continue
        rules = tuple(name.strip() for name in match.group(1).split(",") if name.strip())
        reason_match = _REASON_RE.search(match.group(2))
        reason = reason_match.group(1).strip() if reason_match else ""
        covered = lineno
        if line[: match.start()].strip() == "":
            # standalone comment line: covers the next line
            covered = lineno + 1
        if not rules or not reason:
            problems.append(
                Finding(
                    rule="bad-suppression",
                    path=display_path,
                    line=lineno,
                    message=(
                        "suppression needs a parenthesised reason: "
                        "`# repro-lint: disable=<rule> (<why the invariant does not apply>)`"
                    ),
                )
            )
            continue
        suppressions[covered] = Suppression(line=covered, rules=rules, reason=reason)
    return suppressions, problems


# ---------------------------------------------------------------------------
# file discovery and parsing
# ---------------------------------------------------------------------------

def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, deterministically ordered."""
    seen = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def load_module(path: Path, root: Path) -> Tuple[Optional[Module], List[Finding]]:
    """Parse one file; a syntax error becomes a ``parse-error`` finding."""
    try:
        display = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        display = path.as_posix()
    try:
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
    except (SyntaxError, UnicodeDecodeError, OSError) as error:
        line = getattr(error, "lineno", 0) or 0
        return None, [
            Finding(
                rule="parse-error",
                path=display,
                line=int(line),
                message=f"cannot analyze file: {type(error).__name__}: {error}",
            )
        ]
    suppressions, problems = parse_suppressions(text, display)
    module = Module(
        path=path, display_path=display, text=text, tree=tree, suppressions=suppressions
    )
    return module, problems


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

def load_baseline(path: Path) -> List[Dict[str, object]]:
    """Baseline entries (empty when the file is absent or has no findings)."""
    if not path.is_file():
        return []
    payload = json.loads(path.read_text(encoding="utf-8"))
    entries = payload.get("findings", []) if isinstance(payload, dict) else payload
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} must hold a list under 'findings'")
    return entries


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Grandfather the given findings (used by ``--update-baseline``)."""
    payload = {
        "version": 1,
        "comment": (
            "Grandfathered repro-lint findings. Entries are matched by fingerprint; "
            "a stale entry (finding no longer present) fails the run, so this file "
            "only shrinks. Regenerate with --update-baseline."
        ),
        "findings": [finding.to_dict() for finding in sorted(findings, key=lambda f: (f.path, f.line))],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------

@dataclass
class Report:
    """Everything one analysis run produced."""

    findings: List[Finding]            # actionable: fail the run
    baselined: List[Finding]           # matched a baseline entry: reported, pass
    suppressed: List[Tuple[Finding, Suppression]]  # silenced inline, with reasons
    stale_baseline: List[Dict[str, object]]        # baseline entries nothing matched
    files_scanned: int
    rules_run: List[str]

    @property
    def exit_code(self) -> int:
        return 1 if self.findings or self.stale_baseline else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "findings": [finding.to_dict() for finding in self.findings],
            "baselined": [finding.to_dict() for finding in self.baselined],
            "suppressed": [
                {**finding.to_dict(), "reason": suppression.reason}
                for finding, suppression in self.suppressed
            ],
            "stale_baseline": self.stale_baseline,
            "files_scanned": self.files_scanned,
            "rules_run": self.rules_run,
            "exit_code": self.exit_code,
        }


def _select_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> List[Rule]:
    registry = all_rules()
    names = list(registry)
    if select:
        unknown = sorted(set(select) - set(names))
        if unknown:
            raise ValueError(f"unknown rule(s) {unknown}; available: {sorted(names)}")
        names = [name for name in names if name in set(select)]
    if ignore:
        names = [name for name in names if name not in set(ignore)]
    return [registry[name]() for name in names]


def run_analysis(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline_path: Optional[Path] = None,
    update_baseline: bool = False,
) -> Report:
    """Analyze ``paths`` and return a :class:`Report`.

    ``root`` anchors the relative paths used in findings and baseline
    fingerprints (default: the current working directory).
    """
    root = Path.cwd() if root is None else root
    rules = _select_rules(select, ignore)
    modules: List[Module] = []
    raw_findings: List[Finding] = []
    files = 0
    for path in iter_python_files([Path(p) for p in paths]):
        files += 1
        module, problems = load_module(path, root)
        raw_findings.extend(problems)
        if module is not None:
            modules.append(module)

    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw_findings.extend(rule.check_project(modules))
        else:
            for module in modules:
                raw_findings.extend(rule.check(module))

    # apply inline suppressions (reasons were already validated at parse time)
    by_display = {module.display_path: module for module in modules}
    kept: List[Finding] = []
    suppressed: List[Tuple[Finding, Suppression]] = []
    for finding in raw_findings:
        module = by_display.get(finding.path)
        suppression = module.suppressions.get(finding.line) if module else None
        if suppression is not None and finding.rule in suppression.rules:
            suppressed.append((finding, suppression))
        else:
            kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.rule))

    if update_baseline:
        if baseline_path is None:
            raise ValueError("--update-baseline requires a baseline path")
        write_baseline(baseline_path, kept)

    baseline_entries = load_baseline(baseline_path) if baseline_path else []
    known = {str(entry.get("fingerprint", "")): entry for entry in baseline_entries}
    actionable: List[Finding] = []
    baselined: List[Finding] = []
    matched = set()
    for finding in kept:
        fingerprint = finding.fingerprint()
        if fingerprint in known:
            matched.add(fingerprint)
            baselined.append(finding)
        else:
            actionable.append(finding)
    stale = [entry for fingerprint, entry in known.items() if fingerprint not in matched]
    if update_baseline:
        stale = []  # the file was just rewritten to match reality

    return Report(
        findings=actionable,
        baselined=baselined,
        suppressed=suppressed,
        stale_baseline=stale,
        files_scanned=files,
        rules_run=[rule.name for rule in rules],
    )
