"""repro-lint: repo-specific static analysis enforcing the invariants that
keep this codebase correct under concurrency, buffer reuse and persistent
serialization.

The generic linters (ruff's crash/bugbear/pylint-error rules) catch generic
bug classes; this package encodes the *repo-specific* contracts that past PRs
only pinned with runtime tests:

* workloads shipped to worker processes must be picklable under the ``spawn``
  start method (``spawn-safety``);
* state shared across server/executor threads must be read and written under
  the lock that guards it (``lock-discipline``);
* arrays borrowed from workspace pools or persistent neuron state buffers
  must not escape without a copy (``buffer-escape``);
* Prometheus metrics must be registered once, with literal names and bounded
  label sets (``metrics-hygiene``);
* every field ``result_to_row`` persists must be read back (or explicitly
  defaulted) by the row readers, so cache rows never silently lose data
  (``schema-drift``);
* broad ``except`` handlers must not swallow exceptions silently
  (``swallowed-exception``).

Run it from the repo root::

    python -m tools.analyze src tools benchmarks examples

or via the CLI::

    repro lint

Suppress a finding *with a reason* (reason is mandatory)::

    return spikes  # repro-lint: disable=buffer-escape (aliasing is the documented fast-path contract)

Grandfathered findings live in ``tools/analyze/baseline.json``; stale entries
(findings that no longer occur) fail the run so the baseline only shrinks.
See ``docs/static_analysis.md`` for the full rule catalog.
"""

from tools.analyze.core import (
    Finding,
    Module,
    ProjectRule,
    Report,
    Rule,
    all_rules,
    register,
    run_analysis,
)

__all__ = [
    "Finding",
    "Module",
    "ProjectRule",
    "Report",
    "Rule",
    "all_rules",
    "register",
    "run_analysis",
]
