"""primitive-coverage: every primitive declares its adjoint, and fused
kernels actually consume the residuals they stash.

PR 10 built training on a primitive IR (:mod:`repro.tensor.primitives`) with
hand-written adjoints, plus fused temporal kernels
(:mod:`repro.snn.fused_step`) that stage minimal residuals during the forward
sweep and replay them in a single reverse-time adjoint.  Two drift modes this
rule catches statically:

* **an undifferentiable primitive** — a ``Primitive(...)`` construction with
  no ``vjp`` (or an explicit ``vjp=None``).  The constructor raises at
  runtime, but only when the module is imported; the lint flags it at the
  definition site before anything runs, and keeps flagging a primitive that
  is built lazily or behind a feature gate;
* **write-only residuals** — a kernel class that calls ``self.stash(...)``
  during its forward sweep while no method of the class ever reads one back
  via ``self.stashed(...)``.  Residual stashes exist solely to feed the
  adjoint; a class that stages them and never consumes them is either dead
  memory traffic on the training hot path or, worse, an adjoint silently
  recomputing (or guessing) values the forward already saved.

The residual check is per-class, not per-method: forward and adjoint are
different methods by design, so the stash/stashed pairing only has to hold
across the whole class body.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from tools.analyze.core import Finding, Module, Rule, register


def _terminal_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_self_method_call(node: ast.Call, method: str) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == method
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    )


@register
class PrimitiveCoverageRule(Rule):
    name = "primitive-coverage"
    description = (
        "Primitive(...) must declare a vjp, and a kernel class that stashes "
        "forward residuals must read them back in its adjoint"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and _terminal_name(node.func) == "Primitive":
                yield from self._check_primitive_call(module, node)
        yield from self._walk_classes(module, module.tree)

    # ------------------------------------------------------------------
    def _check_primitive_call(self, module: Module, call: ast.Call) -> Iterator[Finding]:
        vjp: Optional[ast.expr] = None
        for keyword in call.keywords:
            if keyword.arg is None:
                return  # **kwargs construction is opaque to static analysis
            if keyword.arg == "vjp":
                vjp = keyword.value
        primitive_name = ""
        if call.args and isinstance(call.args[0], ast.Constant):
            primitive_name = f" {call.args[0].value!r}"
        if vjp is None:
            yield self.finding(
                module,
                call,
                f"Primitive{primitive_name} is constructed without a vjp — every "
                "primitive must carry a hand-written adjoint (the registry-driven "
                "gradcheck in tests/test_primitives.py can only certify what is "
                "declared)",
            )
        elif isinstance(vjp, ast.Constant) and vjp.value is None:
            yield self.finding(
                module,
                call,
                f"Primitive{primitive_name} declares vjp=None — an explicit None "
                "adjoint makes the primitive unusable under training",
            )

    # ------------------------------------------------------------------
    def _walk_classes(self, module: Module, scope: ast.AST) -> Iterator[Finding]:
        for stmt in getattr(scope, "body", []):
            if isinstance(stmt, ast.ClassDef):
                yield from self._check_class(module, stmt)
                yield from self._walk_classes(module, stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk_classes(module, stmt)

    def _check_class(self, module: Module, cls: ast.ClassDef) -> Iterator[Finding]:
        stash_calls: List[ast.Call] = []
        reads_stashed = False
        for node in ast.walk(cls):
            if isinstance(node, ast.Call):
                if _is_self_method_call(node, "stash"):
                    stash_calls.append(node)
                elif _is_self_method_call(node, "stashed"):
                    reads_stashed = True
        if stash_calls and not reads_stashed:
            yield self.finding(
                module,
                stash_calls[0],
                f"class {cls.name} stashes forward residuals via self.stash(...) "
                "but no method reads them back via self.stashed(...) — residuals "
                "exist to feed the reverse-time adjoint, so a write-only stash is "
                "dead memory traffic on the training hot path (or an adjoint "
                "ignoring what the forward saved)",
            )
