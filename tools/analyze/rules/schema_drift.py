"""store-schema-drift: every field the store writes must have a reader.

The JSONL evaluation store (:mod:`repro.core.cache`) is append-only and
long-lived: rows written by one version of the code are read back by every
later version (warm-start, Pareto reconstruction, the HTTP catalog).  The
schema lives in convention, not in a migration system, so drift is silent:
a field added to :func:`result_to_row` that no reader consumes is dead weight
at best and, at worst, a sign the writer and readers disagree about where a
value lives.

This is a cross-file (project) rule: the writer and its readers live in
different modules.  It collects the literal keys ``result_to_row`` writes
(dict-literal keys plus ``row[...] =`` subscript assignments) and the keys any
known reader consumes (``row["k"]`` loads, ``row.get("k", ...)`` and
``"k" in row`` membership tests), then flags written-but-never-read keys at
the writer's location.  Keys read but never written are fine — readers default
them for backward compatibility with old rows, which is the contract.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from tools.analyze.core import Finding, Module, ProjectRule, register

WRITER = "result_to_row"
READERS = ("row_to_result", "row_metrics", "pareto_front_from_rows")


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _written_keys(func: ast.FunctionDef) -> List[Tuple[str, ast.AST]]:
    keys: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.append((key.value, key))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.append((target.slice.value, target))
    return keys


def _read_keys(func: ast.FunctionDef) -> Set[str]:
    keys: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            keys.add(node.slice.value)
        elif isinstance(node, ast.Call):
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr == "get"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                keys.add(node.args[0].value)
        elif isinstance(node, ast.Compare):
            if (
                isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)
                and any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops)
            ):
                keys.add(node.left.value)
    return keys


@register
class StoreSchemaDriftRule(ProjectRule):
    name = "store-schema-drift"
    description = (
        "fields written by result_to_row must be consumed (or defaulted) by a "
        "store reader; written-but-never-read keys are schema drift"
    )

    def check_project(self, modules: List[Module]) -> Iterator[Finding]:
        writers: List[Tuple[Module, ast.FunctionDef]] = []
        read: Set[str] = set()
        readers_seen = 0
        for module in modules:
            for func in _functions(module.tree):
                if func.name == WRITER:
                    writers.append((module, func))
                elif func.name in READERS:
                    read |= _read_keys(func)
                    readers_seen += 1
        if not writers or not readers_seen:
            return  # nothing to cross-check in this file set
        for module, func in writers:
            for key, node in _written_keys(func):
                if key not in read:
                    yield self.finding(
                        module,
                        node,
                        f"store field {key!r} is written by {WRITER}() but no reader "
                        f"({', '.join(READERS)}) ever reads or defaults it — schema "
                        "drift between writer and readers",
                    )
