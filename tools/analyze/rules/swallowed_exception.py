"""swallowed-exception: broad handlers must use what they catch.

Background job threads (:mod:`repro.server.jobs`) and fallback paths are
where errors go to die: an ``except Exception:`` whose body never touches the
exception — no re-raise, no logging of the caught object, no stashing it on
state — turns a real failure into a silent no-op.  The serving layer's job
threads did exactly this before this rule existed: a failed search left the
job FAILED with a one-line ``str(exc)`` and no traceback.

The rule flags a handler when **all** of the following hold:

* it catches a broad type (``Exception``, ``BaseException`` or a bare
  ``except:``),
* the body contains no ``raise``,
* the caught exception is never referenced (either unbound, or bound to a
  name that no expression in the body loads).

Intentional catch-alls (documented fallbacks, probe loops) must carry a
``repro-lint: disable=swallowed-exception (<why the fallback is safe>)``
comment — the reason requirement is the point: every silent handler in the
tree has a written justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.analyze.core import Finding, Module, Rule, register

BROAD = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except:
    node = handler.type
    if isinstance(node, ast.Name):
        return node.id in BROAD
    if isinstance(node, ast.Tuple):
        return any(isinstance(el, ast.Name) and el.id in BROAD for el in node.elts)
    return False


def _references_exception(handler: ast.ExceptHandler) -> bool:
    if handler.name is None:
        return False
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id == handler.name:
                return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
    return False


@register
class SwallowedExceptionRule(Rule):
    name = "swallowed-exception"
    description = (
        "broad `except Exception:` handlers that neither re-raise nor reference "
        "the caught exception silently destroy failure information"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _reraises(node) or _references_exception(node):
                continue
            yield self.finding(
                module,
                node,
                "broad exception handler swallows the error: it neither re-raises "
                "nor references the caught exception — log it, stash it on state, "
                "or suppress with the reason the fallback is safe",
            )
