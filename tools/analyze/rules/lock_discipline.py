"""lock-discipline: state guarded by a lock must always be accessed under it.

The serving layer (PR 6) shares mutable state across request threads, job
threads and the executor: every ``ThreadingHTTPServer`` request runs on its
own thread, so any attribute one method mutates under ``with self._lock:``
(or a ``Condition``) is a data race when another method touches it bare.
Three checks, all per class and purely lexical:

* **bare write**: an attribute assigned under a ``with self.<lock>:`` block in
  one method is assigned outside any lock elsewhere (``__init__`` is exempt —
  the object is not shared during construction);
* **bare read**: the same, for reads — stale or torn reads are how job state
  machines and health snapshots go subtly wrong;
* **unlocked read-modify-write**: ``x.attr += 1`` outside any lock block, in
  a class that uses locks at all.  Augmented assignment on shared state is
  never atomic (LOAD / BINARY_OP / STORE interleave freely).

Classes that never take a lock are out of scope: single-threaded ownership is
this repo's default (e.g. the async executor is documented single-driver), and
flagging every mutation repo-wide would drown the signal.  A method that is
*always called with the lock held by its caller* is a lexical false positive —
prefer passing a snapshot into the helper (see ``MetricsRegistry.render``),
or suppress with the caller contract as the reason.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from tools.analyze.core import Finding, Module, Rule, register


def _lock_attr(item: ast.withitem) -> str:
    """The attribute name when a with-item is a bare ``self.<attr>``."""
    expr = item.context_expr
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return ""


def _self_attr_writes(node: ast.stmt) -> List[Tuple[str, ast.stmt]]:
    """Names of ``self.X`` (or ``self.X[...]``) targets assigned by ``node``."""
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    writes = []
    for target in targets:
        if isinstance(target, ast.Subscript):
            target = target.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            writes.append((target.attr, node))
    return writes


@register
class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "attributes mutated under `with self.<lock>:` must never be read or "
        "written bare; read-modify-write needs the lock"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    # ------------------------------------------------------------------
    def _check_class(self, module: Module, cls: ast.ClassDef) -> Iterator[Finding]:
        methods = [
            stmt for stmt in cls.body if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_names: Set[str] = set()
        for method in methods:
            for node in ast.walk(method):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        attr = _lock_attr(item)
                        if attr:
                            lock_names.add(attr)
        if not lock_names:
            return

        # which self attributes are ever written while holding a lock, and where
        guarded: Dict[str, str] = {}  # attr -> "method (self.<lock>)" for messages
        for method in methods:
            if method.name == "__init__":
                continue
            for stmt, locked in self._walk_with_lock_state(method, lock_names):
                if locked:
                    for attr, _ in _self_attr_writes(stmt):
                        guarded.setdefault(attr, f"{method.name}() under self.{locked}")

        for method in methods:
            if method.name == "__init__":
                continue
            for stmt, locked in self._walk_with_lock_state(method, lock_names):
                if not locked:
                    for attr, node in _self_attr_writes(stmt):
                        if attr in guarded:
                            yield self.finding(
                                module,
                                node,
                                f"{cls.name}.{attr} is written in {guarded[attr]} but "
                                f"written here without the lock",
                            )
                    if isinstance(stmt, ast.AugAssign):
                        target = stmt.target
                        if isinstance(target, ast.Subscript):
                            target = target.value
                        if isinstance(target, ast.Attribute):
                            yield self.finding(
                                module,
                                stmt,
                                f"unlocked read-modify-write of `.{target.attr}` in "
                                f"{cls.name}.{method.name}(): augmented assignment is not "
                                "atomic; hold the lock that guards this state",
                            )
                # reads are checked per-expression so a locked statement's
                # sub-expressions count as locked
                if not locked:
                    for attr, node in self._self_attr_reads(stmt):
                        if attr in guarded:
                            yield self.finding(
                                module,
                                node,
                                f"{cls.name}.{attr} is written in {guarded[attr]} but "
                                f"read here without the lock (stale/torn read)",
                            )

    # ------------------------------------------------------------------
    def _walk_with_lock_state(
        self, method: ast.AST, lock_names: Set[str]
    ) -> Iterator[Tuple[ast.stmt, str]]:
        """Yield ``(statement, lock_held)`` for every statement in ``method``.

        ``lock_held`` is the lock attribute name when the statement is
        lexically inside a ``with self.<lock>:`` block, else ``""``.  Nested
        function definitions inherit the surrounding lock state (they are
        treated as running where they are defined — true for the
        define-and-call-under-lock helper pattern).
        """

        def visit(stmts: List[ast.stmt], locked: str) -> Iterator[Tuple[ast.stmt, str]]:
            for stmt in stmts:
                inner = locked
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        attr = _lock_attr(item)
                        if attr in lock_names:
                            inner = attr
                yield stmt, locked
                for block in ("body", "orelse", "finalbody"):
                    yield from visit(getattr(stmt, block, []), inner)
                for handler in getattr(stmt, "handlers", []):
                    yield from visit(handler.body, inner)

        yield from visit(getattr(method, "body", []), "")

    def _self_attr_reads(self, stmt: ast.stmt) -> List[Tuple[str, ast.expr]]:
        """``self.X`` loads directly in this statement (not nested blocks)."""
        reads = []
        nested_blocks: List[ast.stmt] = []
        for block in ("body", "orelse", "finalbody"):
            nested_blocks.extend(getattr(stmt, block, []))
        for handler in getattr(stmt, "handlers", []):
            nested_blocks.extend(handler.body)
        skip = {id(sub) for nested in nested_blocks for sub in ast.walk(nested)}
        for node in ast.walk(stmt):
            if id(node) in skip:
                continue
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                reads.append((node.attr, node))
        return reads
