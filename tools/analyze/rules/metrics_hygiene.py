"""metrics-hygiene: Prometheus metrics are registered once, with bounded labels.

The hand-rolled metrics registry (:mod:`repro.server.metrics`) mirrors the
Prometheus client contract: registering the same metric name twice raises, and
every distinct label value materialises a child series that lives for the
process lifetime.  Two failure modes this rule blocks:

* **registration inside request paths**: ``registry.counter(...)`` (or
  ``gauge``/``histogram``) called from an ordinary method or function runs
  once per call — the second request blows up with a duplicate-name error.
  Registration belongs at module scope or in ``__init__``/``__new__`` of a
  long-lived object.
* **unbounded label cardinality**: label *names* must be a literal tuple/list
  of literal strings, and dynamic metric *names* (f-strings, concatenation,
  variables) are flagged — a metric name built from user input is a series
  leak.  (Label *values* are bounded at call time by the registry's
  ``<unmatched>`` guard; this rule polices the declaration side.)

The same hygiene extends to the tracing spans of :mod:`repro.trace`, which
share the bounded-name-set contract (``repro trace`` groups by span name, so
a dynamic name explodes the per-phase breakdown the way a dynamic metric name
explodes a series set):

* **dynamic span names**: the first argument of ``span(...)``/``ops_span(...)``
  must be a string literal;
* **spans opened outside ``with``**: a span whose call is not the context
  expression of a ``with`` block has no guaranteed ``__exit__`` — an exception
  between open and close corrupts the thread-local span stack for every
  later span on that thread.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from tools.analyze.core import Finding, Module, Rule, register

#: registry factory methods that create + register a metric
FACTORY_METHODS = {"counter", "gauge", "histogram", "summary"}

#: span factories from repro.trace subject to span hygiene
SPAN_FACTORIES = {"span", "ops_span"}

#: receiver names that mark the object as a metrics registry
RECEIVER_MARKER = "registry"

#: scopes where registration is allowed
ALLOWED_METHODS = {"__init__", "__new__"}


def _receiver_name(func: ast.expr) -> str:
    """`registry.counter` -> "registry"; `self._registry.gauge` -> "_registry"."""
    if not isinstance(func, ast.Attribute):
        return ""
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return ""


def _is_registration(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in FACTORY_METHODS:
        return False
    return RECEIVER_MARKER in _receiver_name(func).lower()


def _literal_str(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


def _is_span_call(call: ast.Call) -> bool:
    """``span(...)`` / ``ops_span(...)``, bare or via a trace-ish receiver."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in SPAN_FACTORIES
    if isinstance(func, ast.Attribute) and func.attr in SPAN_FACTORIES:
        return "trace" in _receiver_name(func).lower()
    return False


@register
class MetricsHygieneRule(Rule):
    name = "metrics-hygiene"
    description = (
        "metrics must be registered once (module scope or __init__) with a "
        "literal name and a literal, bounded label-name set; tracing spans "
        "must use literal names and open inside a with block"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for call, allowed_scope in self._registrations(module.tree):
            if not allowed_scope:
                yield self.finding(
                    module,
                    call,
                    "metric registered inside a function/method body: the second "
                    "call re-registers the same name and raises; move registration "
                    "to module scope or __init__",
                )
            yield from self._check_arguments(module, call)
        yield from self._check_spans(module)

    def _check_spans(self, module: Module) -> Iterator[Finding]:
        with_contexts = {
            id(item.context_expr)
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items
        }
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _is_span_call(node)):
                continue
            name_arg = node.args[0] if node.args else None
            for keyword in node.keywords:
                if keyword.arg == "name":
                    name_arg = keyword.value
            if name_arg is not None and not _literal_str(name_arg):
                yield self.finding(
                    module,
                    name_arg,
                    "span name must be a string literal: repro trace groups "
                    "phases by name, so a dynamic name makes the breakdown "
                    "unbounded (attach variability as span attributes instead)",
                )
            if id(node) not in with_contexts:
                yield self.finding(
                    module,
                    node,
                    "span opened outside a with block: without a guaranteed "
                    "__exit__ an exception leaves the thread-local span stack "
                    "corrupted for every later span on the thread",
                )

    # ------------------------------------------------------------------
    def _registrations(self, tree: ast.AST) -> List[Tuple[ast.Call, bool]]:
        found: List[Tuple[ast.Call, bool]] = []

        def direct_calls(stmt: ast.stmt):
            """Calls in this statement's own expressions, not nested blocks."""
            nested: List[ast.stmt] = []
            for block in ("body", "orelse", "finalbody"):
                nested.extend(getattr(stmt, block, []))
            for handler in getattr(stmt, "handlers", []):
                nested.extend(handler.body)
            skip = {id(sub) for child in nested for sub in ast.walk(child)}
            for node in ast.walk(stmt):
                if id(node) not in skip and isinstance(node, ast.Call):
                    yield node

        def scan(stmts, allowed: bool) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.ClassDef):
                    scan(stmt.body, allowed=True)  # class body executes once
                    continue
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scan(stmt.body, allowed=stmt.name in ALLOWED_METHODS)
                    continue
                for node in direct_calls(stmt):
                    if _is_registration(node):
                        found.append((node, allowed))
                for block in ("body", "orelse", "finalbody"):
                    scan(getattr(stmt, block, []), allowed)
                for handler in getattr(stmt, "handlers", []):
                    scan(handler.body, allowed)

        scan(getattr(tree, "body", []), allowed=True)
        return found

    def _check_arguments(self, module: Module, call: ast.Call) -> Iterator[Finding]:
        name_arg = call.args[0] if call.args else None
        for keyword in call.keywords:
            if keyword.arg == "name":
                name_arg = keyword.value
        if name_arg is not None and not _literal_str(name_arg):
            yield self.finding(
                module,
                name_arg,
                "metric name must be a string literal: dynamic names leak an "
                "unbounded series per distinct value",
            )
        for keyword in call.keywords:
            if keyword.arg in ("labelnames", "labels", "label_names"):
                yield from self._check_labelnames(module, keyword.value)

    def _check_labelnames(self, module: Module, value: ast.expr) -> Iterator[Finding]:
        if isinstance(value, (ast.Tuple, ast.List)):
            for element in value.elts:
                if not _literal_str(element):
                    yield self.finding(
                        module,
                        element,
                        "label names must be literal strings — a computed label "
                        "name makes the series set unbounded",
                    )
            return
        yield self.finding(
            module,
            value,
            "label names must be a literal tuple/list of strings so the label "
            "set is bounded and reviewable",
        )
