"""Rule catalog: importing this package registers every rule.

Each module holds one rule.  To add a rule: create a module here with a
``Rule`` (or ``ProjectRule``) subclass decorated with
:func:`tools.analyze.core.register`, import it below, and document it in
``docs/static_analysis.md`` with the invariant it protects and fixture tests
proving one true positive and one clean negative (see
``tests/test_repro_lint.py``).
"""

from tools.analyze.rules import (
    buffer_escape,
    lock_discipline,
    metrics_hygiene,
    primitive_coverage,
    schema_drift,
    spawn_safety,
    swallowed_exception,
)

__all__ = [
    "buffer_escape",
    "lock_discipline",
    "metrics_hygiene",
    "primitive_coverage",
    "schema_drift",
    "spawn_safety",
    "swallowed_exception",
]
