"""buffer-escape: pooled scratch and persistent state buffers must not escape.

PR 5's inference fast path reuses buffers aggressively: per-thread workspace
pools (:mod:`repro.tensor.workspace`) and per-neuron persistent state arrays
(``SpikingNeuron._fast_buffer``).  The aliasing contract — pinned by
``tests/test_inference_fastpath.py`` and chased by hand during PR 5's review
hardening — is that nothing reachable from a *returned* value may live in a
reused buffer, because the next call (or the next thread's interleaved
evaluation) overwrites it in place.

PR 8's event-driven sparse mode adds a second escape surface: spike-index
lists attached to tensors via ``attach_events`` are read on *later* steps by
the sparse kernels, so an index array borrowed from a pool and attached
without a copy is a use-after-overwrite waiting to happen.

This rule taints names assigned from buffer-providing calls (any callable
whose name contains ``workspace`` or ``buffer``), propagates taint through
view-producing operations (``reshape``/``transpose``/slicing/``graph_free``/
``Tensor``/``attach_events`` wrapping) and flags ``return``/``yield`` of a
tainted name unless it passes through ``.copy()`` first.  Functions whose own name marks them as
buffer providers (``workspace``/``buffer`` in the name) are exempt — handing
out scratch is their job.

Deliberate aliasing (e.g. the neuron fast path's spike output, copied by
``run_temporal`` at every retention boundary) must be suppressed with the
contract as the reason — that keeps every escape point enumerable.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from tools.analyze.core import Finding, Module, Rule, register

#: a call to any function whose (terminal) name matches these substrings
#: yields a reused buffer
PROVIDER_MARKERS = ("workspace", "buffer")

#: attribute calls on a tainted array that return a view of the same storage
VIEW_METHODS = {"reshape", "ravel", "transpose", "squeeze", "swapaxes", "view"}

#: wrapper callables that keep referencing their argument's storage;
#: ``attach_events`` (PR 8) pins a spike-index list to a tensor that outlives
#: the call, so a pooled index buffer passed through it escapes just like one
#: passed to ``Tensor``
WRAPPERS = {"graph_free", "Tensor", "asarray", "atleast_1d", "attach_events"}


def _terminal_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_provider_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = _terminal_name(node.func).lower()
    return any(marker in name for marker in PROVIDER_MARKERS)


class _FunctionChecker:
    """Linear taint tracking through one function body."""

    def __init__(self, rule: "BufferEscapeRule", module: Module, func: ast.FunctionDef) -> None:
        self.rule = rule
        self.module = module
        self.func = func
        self.tainted: Set[str] = set()

    def run(self) -> Iterator[Finding]:
        yield from self._visit_block(self.func.body)

    # ------------------------------------------------------------------
    def _value_is_tainted(self, value: ast.expr) -> bool:
        if _is_provider_call(value):
            return True
        if isinstance(value, ast.Name):
            return value.id in self.tainted
        if isinstance(value, ast.Subscript):
            return self._value_is_tainted(value.value)
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Attribute) and func.attr in VIEW_METHODS:
                return self._value_is_tainted(func.value)
            if _terminal_name(func) in WRAPPERS:
                return any(self._value_is_tainted(arg) for arg in value.args)
        return False

    def _assign(self, node: ast.stmt) -> None:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                if self._value_is_tainted(value):
                    self.tainted.add(target.id)
                else:
                    self.tainted.discard(target.id)
            elif isinstance(target, ast.Tuple) and _is_provider_call(value):
                # the `(array, matched) = workspace(...)` shape: the first
                # element is the buffer, the rest are flags
                if target.elts and isinstance(target.elts[0], ast.Name):
                    self.tainted.add(target.elts[0].id)

    def _escapes(self, expr: ast.expr) -> Iterator[ast.Name]:
        """Tainted names whose storage is reachable from ``expr``.

        Recursion is structural, not blanket: containers, subscripts (numpy
        views), view methods and storage-keeping wrappers propagate aliasing;
        arithmetic allocates fresh arrays and an ordinary helper call's return
        value is that helper's responsibility (its own body is checked), so
        neither is followed.
        """
        if isinstance(expr, ast.Name):
            if expr.id in self.tainted:
                yield expr
        elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                yield from self._escapes(element)
        elif isinstance(expr, ast.Dict):
            for value in expr.values:
                if value is not None:
                    yield from self._escapes(value)
        elif isinstance(expr, ast.Starred):
            yield from self._escapes(expr.value)
        elif isinstance(expr, ast.IfExp):
            yield from self._escapes(expr.body)
            yield from self._escapes(expr.orelse)
        elif isinstance(expr, ast.NamedExpr):
            yield from self._escapes(expr.value)
        elif isinstance(expr, ast.Subscript):
            yield from self._escapes(expr.value)  # numpy slicing returns a view
        elif isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) and func.attr == "copy":
                return  # name.copy() (or view.copy()) detaches from the buffer
            if isinstance(func, ast.Attribute) and func.attr == "astype":
                # astype copies unless copy=False is forced
                if any(
                    keyword.arg == "copy"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is False
                    for keyword in expr.keywords
                ):
                    yield from self._escapes(func.value)
                return
            if isinstance(func, ast.Attribute) and func.attr in VIEW_METHODS:
                yield from self._escapes(func.value)
            elif _terminal_name(func) in WRAPPERS:
                for arg in expr.args:
                    yield from self._escapes(arg)

    # ------------------------------------------------------------------
    def _visit_block(self, stmts) -> Iterator[Finding]:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self.rule.check_function(self.module, stmt)
                continue
            self._assign(stmt)
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                yield from self._report(stmt, stmt.value, "returned")
            elif isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, (ast.Yield, ast.YieldFrom)
            ):
                value = stmt.value.value
                if value is not None:
                    yield from self._report(stmt, value, "yielded")
            for block in ("body", "orelse", "finalbody"):
                yield from self._visit_block(getattr(stmt, block, []))
            for handler in getattr(stmt, "handlers", []):
                yield from self._visit_block(handler.body)

    def _report(self, stmt: ast.stmt, value: ast.expr, verb: str) -> Iterator[Finding]:
        for name in self._escapes(value):
            yield self.rule.finding(
                self.module,
                stmt,
                f"{name.id!r} aliases a reused workspace/state buffer and is {verb} "
                f"from {self.func.name}() without `.copy()` — the next pooled call "
                "overwrites it in place",
            )


@register
class BufferEscapeRule(Rule):
    name = "buffer-escape"
    description = (
        "arrays borrowed from workspace pools or persistent neuron state must "
        "not be returned/yielded without an intervening copy"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        yield from self._walk_scope(module, module.tree)

    def _walk_scope(self, module: Module, scope: ast.AST) -> Iterator[Finding]:
        for stmt in getattr(scope, "body", []):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self.check_function(module, stmt)
            elif isinstance(stmt, ast.ClassDef):
                yield from self._walk_scope(module, stmt)

    def check_function(self, module: Module, func: ast.FunctionDef) -> Iterator[Finding]:
        name = func.name.lower()
        if any(marker in name for marker in PROVIDER_MARKERS):
            return  # buffer providers hand out scratch by design
        yield from _FunctionChecker(self, module, func).run()
