"""spawn-safety: workloads shipped to worker processes must be picklable.

The invariant (established by PR 2's result-carried updates and pinned by the
CI spawn-mode smoke): anything handed to :func:`repro.training.parallel.parallel_map`,
:func:`repro.core.async_eval.evaluate_ordered` or an
:class:`~repro.core.async_eval.AsyncEvaluationExecutor` may cross a
fresh-interpreter process boundary, so it must be picklable.  Lambdas and
nested (closure) functions are never picklable; passing one silently degrades
the run to the sequential fallback — the work still happens, but on one core,
which is exactly the kind of quiet performance bug a lint should catch before
review does.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from tools.analyze.core import Finding, Module, Rule, register

#: callables whose first argument (or ``func=`` / ``objective=`` keyword) is
#: shipped to worker processes
TARGETS = {
    "parallel_map": ("func",),
    "evaluate_ordered": ("objective",),
    "AsyncEvaluationExecutor": ("objective",),
}

#: how a name was bound in the enclosing scopes
_OK, _LAMBDA, _NESTED_DEF = "ok", "lambda", "nested def"


def _callable_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@register
class SpawnSafetyRule(Rule):
    name = "spawn-safety"
    description = (
        "lambdas and nested functions passed to parallel_map / evaluate_ordered / "
        "AsyncEvaluationExecutor cannot be pickled for spawn-mode workers"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        yield from self._scan(module, module.tree, {}, at_module_scope=True)

    def _scan(
        self,
        module: Module,
        scope: ast.AST,
        outer_env: Dict[str, str],
        at_module_scope: bool,
    ) -> Iterator[Finding]:
        env = dict(outer_env)
        body = getattr(scope, "body", [])
        # first pass: how does this scope bind callables? (a def may be used
        # above its statement position inside a function, so bind upfront)
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                env[stmt.name] = _OK if at_module_scope else _NESTED_DEF
            elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Lambda):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        env[target.id] = _LAMBDA
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        env[target.id] = _OK
        # second pass: check calls and recurse into nested scopes
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._scan(module, stmt, env, at_module_scope=False)
                continue
            if isinstance(stmt, ast.ClassDef):
                yield from self._scan(module, stmt, env, at_module_scope=at_module_scope)
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    yield from self._check_call(module, node, env)

    def _check_call(
        self, module: Module, call: ast.Call, env: Dict[str, str]
    ) -> Iterator[Finding]:
        target = _callable_name(call.func)
        if target not in TARGETS:
            return
        workload = call.args[0] if call.args else None
        if workload is None:
            keywords = TARGETS[target]
            for keyword in call.keywords:
                if keyword.arg in keywords:
                    workload = keyword.value
                    break
        if workload is None:
            return
        if isinstance(workload, ast.Lambda):
            yield self.finding(
                module,
                workload,
                f"lambda passed to {target}() cannot be pickled for spawn-mode "
                "workers; use a module-level function (or a picklable callable class)",
            )
        elif isinstance(workload, ast.Name) and env.get(workload.id) in (_LAMBDA, _NESTED_DEF):
            kind = env[workload.id]
            yield self.finding(
                module,
                workload,
                f"{kind} {workload.id!r} passed to {target}() cannot be pickled for "
                "spawn-mode workers; move it to module scope (closures don't survive pickling)",
            )
