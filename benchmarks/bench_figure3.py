"""Benchmark regenerating Fig. 3: Bayesian optimization vs. random search.

Both methods search the same skip-connection space of the ResNet-18-style
template on synthetic CIFAR-10-DVS; the incumbent test accuracy per evaluation
is reported as mean ± standard deviation over several runs, exactly the series
plotted in the paper's Fig. 3.

Expected shape: the proposed GP+UCB search with weight sharing reaches a
higher incumbent accuracy than random search within the same evaluation
budget, with a smaller spread across runs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments import format_figure3, run_figure3


def _run():
    scale = bench_scale()
    result = run_figure3(scale=scale, dataset="cifar10-dvs", model="resnet18", seed=scale.seed)
    print()
    print(format_figure3(result))
    return result


@pytest.mark.benchmark(group="figure3", min_rounds=1, max_time=1.0, warmup=False)
def test_figure3_bo_vs_random_search(benchmark):
    """Fig. 3: incumbent accuracy per iteration, mean ± std over repeated runs."""
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert len(result.bo_curve.runs) == len(result.rs_curve.runs) >= 1
    # both curves are monotone non-decreasing (incumbent accuracy)
    for run in result.bo_curve.runs + result.rs_curve.runs:
        assert all(run[i + 1] >= run[i] - 1e-12 for i in range(len(run) - 1))
    # the qualitative claim of Fig. 3: BO is at least as good as RS at the end
    assert result.bo_curve.final_mean() >= result.rs_curve.final_mean() - 0.1
