"""Micro-benchmarks of the computational substrate.

These are not paper figures; they track the performance of the hot paths the
experiments sit on (im2col convolution forward/backward, LIF simulation
steps, a full BPTT step, GP fitting, one BO proposal round) so regressions in
the substrate are visible independently of the experiment-level benchmarks.

Since the graph-free inference fast path landed, every hot case exists in two
variants — the **autograd path** (gradients enabled, graph recorded) and the
**inference path** (under :func:`~repro.tensor.tensor.no_grad`: GEMM conv
kernels, pooled im2col workspaces, fused in-place neuron stepping) — so both
are tracked and their ratio is a regression-gated number.

Two ways to run:

* ``PYTHONPATH=src python -m pytest benchmarks/bench_substrate.py --benchmark-only``
  — the pytest-benchmark suite (statistical timings, local profiling);
* ``PYTHONPATH=src python benchmarks/bench_substrate.py [--smoke] [--output f.json]``
  — the standalone script CI runs: times each hot path on both paths,
  verifies the two paths produce **bit-identical** outputs, and emits the
  JSON that ``tools/bench_gate.py`` compares against the committed
  ``benchmarks/BENCH_5.json`` baseline.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, Optional, Sequence

import numpy as np

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without dev extras
    pytest = None

from repro.core.bayes_opt import BayesianOptimizer
from repro.core.objectives import EvaluationResult, Objective
from repro.core.search_space import BlockSearchInfo, SearchSpace
from repro.gp import GaussianProcessRegressor, HammingKernel
from repro.models import get_template
from repro.nn import CrossEntropyLoss
from repro.snn import LIFNeuron, TemporalRunner
from repro.tensor import Tensor, conv2d, no_grad

benchmark_case = pytest.mark.benchmark(group="substrate") if pytest else (lambda f: f)


def _lif_sequence(neuron: LIFNeuron, current: Tensor, steps: int) -> Tensor:
    """Reset and run ``steps`` LIF updates, returning the last spikes."""
    neuron.reset_state()
    spikes = None
    for _ in range(steps):
        spikes = neuron(current)
    return spikes


@benchmark_case
def test_conv2d_forward(benchmark):
    """im2col convolution forward on the autograd path (graph recorded)."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(8, 8, 16, 16)))
    w = Tensor(rng.normal(size=(16, 8, 3, 3)), requires_grad=True)
    benchmark(lambda: conv2d(x, w, padding=1))


@benchmark_case
def test_conv2d_forward_inference(benchmark):
    """Graph-free conv forward: pooled im2col workspace + one batched GEMM."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(8, 8, 16, 16)))
    w = Tensor(rng.normal(size=(16, 8, 3, 3)), requires_grad=True)

    def run():
        with no_grad():
            conv2d(x, w, padding=1)

    benchmark(run)


@benchmark_case
def test_conv2d_forward_backward(benchmark):
    """Convolution forward + backward (dominates BPTT training time)."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(8, 8, 16, 16)), requires_grad=True)
    w = Tensor(rng.normal(size=(16, 8, 3, 3)), requires_grad=True)

    def run():
        x.zero_grad()
        w.zero_grad()
        out = conv2d(x, w, padding=1)
        out.sum().backward()

    benchmark(run)


@benchmark_case
def test_lif_step(benchmark):
    """One LIF update over a feature-map-sized membrane (autograd path)."""
    rng = np.random.default_rng(0)
    neuron = LIFNeuron(beta=0.9)
    current = Tensor(rng.normal(size=(16, 16, 16, 16)))

    def run():
        neuron.reset_state()
        neuron(current)

    benchmark(run)


@benchmark_case
def test_lif_steps(benchmark):
    """A multi-step LIF sequence on the autograd path (grad-tracked input)."""
    rng = np.random.default_rng(0)
    neuron = LIFNeuron(beta=0.9)
    current = Tensor(rng.normal(size=(16, 16, 16, 16)), requires_grad=True)
    benchmark(lambda: _lif_sequence(neuron, current, 8))


@benchmark_case
def test_lif_steps_inference(benchmark):
    """The same LIF sequence on the fused in-place inference path."""
    rng = np.random.default_rng(0)
    neuron = LIFNeuron(beta=0.9)
    current = Tensor(rng.normal(size=(16, 16, 16, 16)))

    def run():
        with no_grad():
            _lif_sequence(neuron, current, 8)

    benchmark(run)


@benchmark_case
def test_snn_bptt_training_step(benchmark):
    """Full forward + BPTT backward of the ResNet-style SNN for one mini-batch."""
    rng = np.random.default_rng(0)
    template = get_template("resnet18", input_channels=2, num_classes=10, stage_channels=(6, 8))
    model = template.build(spiking=True, rng=0)
    runner = TemporalRunner(model, num_steps=5)
    loss_fn = CrossEntropyLoss()
    batch = rng.random((8, 2, 12, 12))
    targets = rng.integers(0, 10, size=8)

    def run():
        model.zero_grad()
        loss = loss_fn(runner(batch), targets)
        loss.backward()

    benchmark(run)


@benchmark_case
def test_snn_temporal_eval_inference(benchmark):
    """Full evaluation forward of the ResNet-style SNN on the fast path."""
    rng = np.random.default_rng(0)
    template = get_template("resnet18", input_channels=2, num_classes=10, stage_channels=(6, 8))
    model = template.build(spiking=True, rng=0)
    model.eval()
    runner = TemporalRunner(model, num_steps=5)
    batch = rng.random((8, 2, 12, 12))

    def run():
        with no_grad():
            runner(batch)

    benchmark(run)


@benchmark_case
def test_gp_fit_predict(benchmark):
    """GP fit + posterior prediction at the sizes the BO loop uses."""
    rng = np.random.default_rng(0)
    x = rng.integers(0, 3, size=(60, 12)).astype(float)
    y = rng.normal(size=60)
    query = rng.integers(0, 3, size=(64, 12)).astype(float)

    def run():
        gp = GaussianProcessRegressor(HammingKernel(), noise=1e-3)
        gp.fit(x, y)
        gp.predict(query)

    benchmark(run)


class _FreeObjective(Objective):
    """Zero-cost objective used to time the BO proposal machinery itself."""

    def __call__(self, spec):
        value = float(spec.total_skips()) / max(spec.encode().size, 1)
        return EvaluationResult(spec=spec, objective_value=value, accuracy=1 - value)


@benchmark_case
def test_bo_proposal_round(benchmark):
    """One surrogate fit + acquisition maximisation + batch proposal."""
    space = SearchSpace([BlockSearchInfo(depth=4), BlockSearchInfo(depth=4)])

    def run():
        optimizer = BayesianOptimizer(space, _FreeObjective(), initial_points=8, candidate_pool_size=64, rng=0)
        optimizer.optimize(3)

    benchmark(run)


# ---------------------------------------------------------------------------
# standalone script mode (CI artifact + regression gate input)
# ---------------------------------------------------------------------------

def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``fn()``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _pair(autograd_s: float, fast_s: float) -> Dict[str, float]:
    return {
        "autograd_ms": autograd_s * 1e3,
        "fast_ms": fast_s * 1e3,
        "speedup": autograd_s / fast_s if fast_s > 0 else float("inf"),
    }


def bench_conv_forward(repeats: int) -> Dict[str, float]:
    """Autograd conv forward (einsum + graph) vs graph-free GEMM fast path."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(8, 8, 16, 16)))
    w = Tensor(rng.normal(size=(16, 8, 3, 3)), requires_grad=True)
    reference = conv2d(x, w, padding=1).data
    with no_grad():
        fast = conv2d(x, w, padding=1).data
    if not np.array_equal(reference, fast):  # pragma: no cover - equality gate
        raise AssertionError("conv2d fast path diverged from the autograd path")

    def autograd() -> None:
        conv2d(x, w, padding=1)

    def inference() -> None:
        with no_grad():
            conv2d(x, w, padding=1)

    return _pair(_time(autograd, repeats), _time(inference, repeats))


def bench_lif_step(repeats: int, steps: int = 8) -> Dict[str, float]:
    """Per-step cost of a LIF sequence: autograd vs fused in-place stepping.

    The autograd variant drives the neuron with a grad-tracked input — as in
    training, where the preceding convolution's output carries the graph — so
    the measured pair is the real training-forward step against the real
    inference step.
    """
    rng = np.random.default_rng(0)
    values = rng.normal(size=(16, 16, 16, 16))
    tracked = Tensor(values, requires_grad=True)
    current = Tensor(values)
    reference_neuron = LIFNeuron(beta=0.9)
    fast_neuron = LIFNeuron(beta=0.9)
    reference = _lif_sequence(reference_neuron, tracked, steps).data.copy()
    with no_grad():
        fast = _lif_sequence(fast_neuron, current, steps).data
    if not np.array_equal(reference, fast):  # pragma: no cover - equality gate
        raise AssertionError("LIF fast path diverged from the autograd path")

    def autograd() -> None:
        _lif_sequence(reference_neuron, tracked, steps)

    def inference() -> None:
        with no_grad():
            _lif_sequence(fast_neuron, current, steps)

    row = _pair(_time(autograd, repeats) / steps, _time(inference, repeats) / steps)
    row["steps"] = float(steps)
    return row


def bench_temporal_eval(repeats: int, num_steps: int = 5) -> Dict[str, float]:
    """Whole-model SNN evaluation forward: autograd path vs fast path."""
    rng = np.random.default_rng(0)
    template = get_template("resnet18", input_channels=2, num_classes=10, stage_channels=(6, 8))
    model = template.build(spiking=True, rng=0)
    model.eval()
    runner = TemporalRunner(model, num_steps=num_steps)
    batch = rng.random((8, 2, 12, 12))
    reference = runner(batch).data.copy()
    with no_grad():
        fast = runner(batch).data
    if not np.array_equal(reference, fast):  # pragma: no cover - equality gate
        raise AssertionError("temporal fast path diverged from the autograd path")

    def autograd() -> None:
        runner(batch)

    def inference() -> None:
        with no_grad():
            runner(batch)

    row = _pair(_time(autograd, repeats), _time(inference, repeats))
    row["num_steps"] = float(num_steps)
    return row


def bench_bptt_step(repeats: int) -> Dict[str, float]:
    """Absolute cost of one BPTT training step (no fast-path variant)."""
    rng = np.random.default_rng(0)
    template = get_template("resnet18", input_channels=2, num_classes=10, stage_channels=(6, 8))
    model = template.build(spiking=True, rng=0)
    runner = TemporalRunner(model, num_steps=5)
    loss_fn = CrossEntropyLoss()
    batch = rng.random((8, 2, 12, 12))
    targets = rng.integers(0, 10, size=8)

    def step() -> None:
        model.zero_grad()
        loss_fn(runner(batch), targets).backward()

    return {"ms": _time(step, repeats) * 1e3}


def format_report(payload: Dict[str, Dict[str, float]]) -> str:
    """Human-readable substrate report."""
    lines = ["Substrate hot paths: autograd vs graph-free inference"]
    lines.append(f"{'case':>16} {'autograd ms':>12} {'fast ms':>10} {'speedup':>9}")
    for case in ("conv2d_forward", "lif_step", "temporal_eval"):
        row = payload[case]
        lines.append(
            f"{case:>16} {row['autograd_ms']:>12.3f} {row['fast_ms']:>10.3f} {row['speedup']:>8.1f}x"
        )
    lines.append(f"BPTT training step: {payload['bptt_step']['ms']:.1f} ms")
    lines.append("(fast-path outputs verified bit-identical to the autograd path before timing)")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Benchmark entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description="Benchmark the evaluation substrate hot paths")
    parser.add_argument("--smoke", action="store_true", help="CI-sized run (fewer repeats)")
    parser.add_argument("--output", default=None, help="optional path for the JSON timings")
    args = parser.parse_args(argv)

    repeats = 20 if args.smoke else 100
    heavy_repeats = 3 if args.smoke else 10

    payload: Dict[str, object] = {
        "conv2d_forward": bench_conv_forward(repeats),
        "lif_step": bench_lif_step(repeats),
        "temporal_eval": bench_temporal_eval(heavy_repeats),
        "bptt_step": bench_bptt_step(heavy_repeats),
        "smoke": bool(args.smoke),
    }
    print(format_report(payload))

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nsaved timings to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
