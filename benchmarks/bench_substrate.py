"""Micro-benchmarks of the computational substrate.

These are not paper figures; they track the performance of the hot paths the
experiments sit on (im2col convolution forward/backward, LIF simulation
steps, a full BPTT step, GP fitting, one BO proposal round) so regressions in
the substrate are visible independently of the experiment-level benchmarks.

Since the graph-free inference fast path landed, every hot case exists in two
variants — the **autograd path** (gradients enabled, graph recorded) and the
**inference path** (under :func:`~repro.tensor.tensor.no_grad`: GEMM conv
kernels, pooled im2col workspaces, fused in-place neuron stepping) — so both
are tracked and their ratio is a regression-gated number.

Two ways to run:

* ``PYTHONPATH=src python -m pytest benchmarks/bench_substrate.py --benchmark-only``
  — the pytest-benchmark suite (statistical timings, local profiling);
* ``PYTHONPATH=src python benchmarks/bench_substrate.py [--smoke] [--output f.json]``
  — the standalone script CI runs: times each hot path on both paths,
  verifies the two paths produce **bit-identical** outputs, and emits the
  JSON that ``tools/bench_gate.py`` compares against the committed baselines
  (``benchmarks/BENCH_5.json`` for the fast-path cases,
  ``benchmarks/BENCH_8.json`` for the event-driven sparse cases).
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, Optional, Sequence

import numpy as np

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without dev extras
    pytest = None

from repro.core.bayes_opt import BayesianOptimizer
from repro.core.objectives import EvaluationResult, Objective
from repro.core.search_space import BlockSearchInfo, SearchSpace
from repro.gp import GaussianProcessRegressor, HammingKernel
from repro.models import get_template
from repro.nn import Conv2d, CrossEntropyLoss, Flatten, GlobalAvgPool2d, Linear, Sequential
from repro.snn import LeakyIntegrator, LIFNeuron, TemporalRunner
from repro.snn.temporal import run_temporal
from repro.tensor import (
    Tensor,
    assert_float32_contract,
    conv2d,
    no_grad,
    sparse_inference,
)

benchmark_case = pytest.mark.benchmark(group="substrate") if pytest else (lambda f: f)


def _lif_sequence(neuron: LIFNeuron, current: Tensor, steps: int) -> Tensor:
    """Reset and run ``steps`` LIF updates, returning the last spikes."""
    neuron.reset_state()
    spikes = None
    for _ in range(steps):
        spikes = neuron(current)
    return spikes


@benchmark_case
def test_conv2d_forward(benchmark):
    """im2col convolution forward on the autograd path (graph recorded)."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(8, 8, 16, 16)))
    w = Tensor(rng.normal(size=(16, 8, 3, 3)), requires_grad=True)
    benchmark(lambda: conv2d(x, w, padding=1))


@benchmark_case
def test_conv2d_forward_inference(benchmark):
    """Graph-free conv forward: pooled im2col workspace + one batched GEMM."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(8, 8, 16, 16)))
    w = Tensor(rng.normal(size=(16, 8, 3, 3)), requires_grad=True)

    def run():
        with no_grad():
            conv2d(x, w, padding=1)

    benchmark(run)


@benchmark_case
def test_conv2d_forward_backward(benchmark):
    """Convolution forward + backward (dominates BPTT training time)."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(8, 8, 16, 16)), requires_grad=True)
    w = Tensor(rng.normal(size=(16, 8, 3, 3)), requires_grad=True)

    def run():
        x.zero_grad()
        w.zero_grad()
        out = conv2d(x, w, padding=1)
        out.sum().backward()

    benchmark(run)


@benchmark_case
def test_lif_step(benchmark):
    """One LIF update over a feature-map-sized membrane (autograd path)."""
    rng = np.random.default_rng(0)
    neuron = LIFNeuron(beta=0.9)
    current = Tensor(rng.normal(size=(16, 16, 16, 16)))

    def run():
        neuron.reset_state()
        neuron(current)

    benchmark(run)


@benchmark_case
def test_lif_steps(benchmark):
    """A multi-step LIF sequence on the autograd path (grad-tracked input)."""
    rng = np.random.default_rng(0)
    neuron = LIFNeuron(beta=0.9)
    current = Tensor(rng.normal(size=(16, 16, 16, 16)), requires_grad=True)
    benchmark(lambda: _lif_sequence(neuron, current, 8))


@benchmark_case
def test_lif_steps_inference(benchmark):
    """The same LIF sequence on the fused in-place inference path."""
    rng = np.random.default_rng(0)
    neuron = LIFNeuron(beta=0.9)
    current = Tensor(rng.normal(size=(16, 16, 16, 16)))

    def run():
        with no_grad():
            _lif_sequence(neuron, current, 8)

    benchmark(run)


@benchmark_case
def test_snn_bptt_training_step(benchmark):
    """Full forward + BPTT backward of the ResNet-style SNN for one mini-batch."""
    rng = np.random.default_rng(0)
    template = get_template("resnet18", input_channels=2, num_classes=10, stage_channels=(6, 8))
    model = template.build(spiking=True, rng=0)
    runner = TemporalRunner(model, num_steps=5)
    loss_fn = CrossEntropyLoss()
    batch = rng.random((8, 2, 12, 12))
    targets = rng.integers(0, 10, size=8)

    def run():
        model.zero_grad()
        loss = loss_fn(runner(batch), targets)
        loss.backward()

    benchmark(run)


@benchmark_case
def test_snn_temporal_eval_inference(benchmark):
    """Full evaluation forward of the ResNet-style SNN on the fast path."""
    rng = np.random.default_rng(0)
    template = get_template("resnet18", input_channels=2, num_classes=10, stage_channels=(6, 8))
    model = template.build(spiking=True, rng=0)
    model.eval()
    runner = TemporalRunner(model, num_steps=5)
    batch = rng.random((8, 2, 12, 12))

    def run():
        with no_grad():
            runner(batch)

    benchmark(run)


@benchmark_case
def test_snn_temporal_eval_sparse(benchmark):
    """Event-driven sparse evaluation of a deep spiking conv chain at 1% firing rate."""
    rng = np.random.default_rng(0)
    model = _spiking_conv_chain()
    model.eval()
    batch = (rng.random((8, 6, 16, 16, 16)) < 0.01).astype(np.float64)

    def run():
        with no_grad(), sparse_inference():
            run_temporal(model, batch, num_steps=6)

    benchmark(run)


@benchmark_case
def test_gp_fit_predict(benchmark):
    """GP fit + posterior prediction at the sizes the BO loop uses."""
    rng = np.random.default_rng(0)
    x = rng.integers(0, 3, size=(60, 12)).astype(float)
    y = rng.normal(size=60)
    query = rng.integers(0, 3, size=(64, 12)).astype(float)

    def run():
        gp = GaussianProcessRegressor(HammingKernel(), noise=1e-3)
        gp.fit(x, y)
        gp.predict(query)

    benchmark(run)


class _FreeObjective(Objective):
    """Zero-cost objective used to time the BO proposal machinery itself."""

    def __call__(self, spec):
        value = float(spec.total_skips()) / max(spec.encode().size, 1)
        return EvaluationResult(spec=spec, objective_value=value, accuracy=1 - value)


@benchmark_case
def test_bo_proposal_round(benchmark):
    """One surrogate fit + acquisition maximisation + batch proposal."""
    space = SearchSpace([BlockSearchInfo(depth=4), BlockSearchInfo(depth=4)])

    def run():
        optimizer = BayesianOptimizer(space, _FreeObjective(), initial_points=8, candidate_pool_size=64, rng=0)
        optimizer.optimize(3)

    benchmark(run)


# ---------------------------------------------------------------------------
# standalone script mode (CI artifact + regression gate input)
# ---------------------------------------------------------------------------

def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``fn()``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _pair(autograd_s: float, fast_s: float) -> Dict[str, float]:
    return {
        "autograd_ms": autograd_s * 1e3,
        "fast_ms": fast_s * 1e3,
        "speedup": autograd_s / fast_s if fast_s > 0 else float("inf"),
    }


def bench_conv_forward(repeats: int) -> Dict[str, float]:
    """Autograd conv forward (einsum + graph) vs graph-free GEMM fast path."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(8, 8, 16, 16)))
    w = Tensor(rng.normal(size=(16, 8, 3, 3)), requires_grad=True)
    reference = conv2d(x, w, padding=1).data
    with no_grad():
        fast = conv2d(x, w, padding=1).data
    if not np.array_equal(reference, fast):  # pragma: no cover - equality gate
        raise AssertionError("conv2d fast path diverged from the autograd path")

    def autograd() -> None:
        conv2d(x, w, padding=1)

    def inference() -> None:
        with no_grad():
            conv2d(x, w, padding=1)

    return _pair(_time(autograd, repeats), _time(inference, repeats))


def bench_lif_step(repeats: int, steps: int = 8) -> Dict[str, float]:
    """Per-step cost of a LIF sequence: autograd vs fused in-place stepping.

    The autograd variant drives the neuron with a grad-tracked input — as in
    training, where the preceding convolution's output carries the graph — so
    the measured pair is the real training-forward step against the real
    inference step.
    """
    rng = np.random.default_rng(0)
    values = rng.normal(size=(16, 16, 16, 16))
    tracked = Tensor(values, requires_grad=True)
    current = Tensor(values)
    reference_neuron = LIFNeuron(beta=0.9)
    fast_neuron = LIFNeuron(beta=0.9)
    reference = _lif_sequence(reference_neuron, tracked, steps).data.copy()
    with no_grad():
        fast = _lif_sequence(fast_neuron, current, steps).data
    if not np.array_equal(reference, fast):  # pragma: no cover - equality gate
        raise AssertionError("LIF fast path diverged from the autograd path")

    def autograd() -> None:
        _lif_sequence(reference_neuron, tracked, steps)

    def inference() -> None:
        with no_grad():
            _lif_sequence(fast_neuron, current, steps)

    row = _pair(_time(autograd, repeats) / steps, _time(inference, repeats) / steps)
    row["steps"] = float(steps)
    return row


def bench_temporal_eval(repeats: int, num_steps: int = 5) -> Dict[str, float]:
    """Whole-model SNN evaluation forward: autograd path vs fast path."""
    rng = np.random.default_rng(0)
    template = get_template("resnet18", input_channels=2, num_classes=10, stage_channels=(6, 8))
    model = template.build(spiking=True, rng=0)
    model.eval()
    runner = TemporalRunner(model, num_steps=num_steps)
    batch = rng.random((8, 2, 12, 12))
    reference = runner(batch).data.copy()
    with no_grad():
        fast = runner(batch).data
    if not np.array_equal(reference, fast):  # pragma: no cover - equality gate
        raise AssertionError("temporal fast path diverged from the autograd path")

    def autograd() -> None:
        runner(batch)

    def inference() -> None:
        with no_grad():
            runner(batch)

    row = _pair(_time(autograd, repeats), _time(inference, repeats))
    row["num_steps"] = float(num_steps)
    return row


def _spiking_conv_chain(channels: int = 16, depth: int = 6, num_classes: int = 10) -> Sequential:
    """Deep conv->LIF stack whose spikes feed the convolutions directly (no
    BatchNorm in between), so event lists stay consumable by the sparse
    dispatch all the way down; a pooled classifier keeps the non-conv floor
    small so the measured ratio reflects the convolution dispatch."""
    layers = []
    for _ in range(depth):
        layers.append(Conv2d(channels, channels, kernel_size=3, padding=1))
        layers.append(LIFNeuron(beta=0.9, threshold=1.0))
    layers += [GlobalAvgPool2d(), Flatten(), Linear(channels, num_classes), LeakyIntegrator(0.9)]
    return Sequential(*layers)


def bench_sparse_eval(repeats: int, rate: float, num_steps: int = 6) -> Dict[str, float]:
    """Event-driven sparse SNN evaluation against the dense fast path.

    The input is a binary spike train firing at ``rate``; both variants run
    the graph-free inference path, the sparse one additionally inside
    :func:`~repro.tensor.sparse.sparse_inference`.  Outputs are verified
    bit-identical before timing (the sparse contract), so the ratio measures
    pure dispatch benefit: below the crossover the gather/scatter kernels win,
    above it the dispatcher falls back to dense and the ratio tends to 1.
    """
    rng = np.random.default_rng(0)
    model = _spiking_conv_chain()
    model.eval()
    batch = (rng.random((8, num_steps, 16, 16, 16)) < rate).astype(np.float64)
    with no_grad():
        dense_out = run_temporal(model, batch, num_steps=num_steps).data.copy()
        with sparse_inference():
            sparse_out = run_temporal(model, batch, num_steps=num_steps).data
    if not np.array_equal(dense_out, sparse_out):  # pragma: no cover - equality gate
        raise AssertionError(f"sparse eval diverged from dense at rate {rate}")

    def dense() -> None:
        with no_grad():
            run_temporal(model, batch, num_steps=num_steps)

    def sparse() -> None:
        with no_grad(), sparse_inference():
            run_temporal(model, batch, num_steps=num_steps)

    return {
        "rate": float(rate),
        "dense_ms": _time(dense, repeats) * 1e3,
        "sparse_ms": _time(sparse, repeats) * 1e3,
    }


def bench_dtype_eval(repeats: int, num_steps: int = 5) -> Dict[str, float]:
    """float32 vs float64 bandwidth of the whole-model evaluation fast path.

    Two identically-initialised models, one cast with ``Module.to_dtype``;
    the float32 output is checked against the pinned tolerance contract
    before timing.  The ratio (f64 time / f32 time) is reported for tracking,
    not gated: it measures memory-bandwidth relief, which varies by host.
    """
    rng = np.random.default_rng(0)
    batch64 = rng.random((8, 2, 12, 12))
    batch32 = batch64.astype(np.float32)

    def build():
        template = get_template("resnet18", input_channels=2, num_classes=10, stage_channels=(6, 8))
        model = template.build(spiking=True, rng=0)
        model.eval()
        return TemporalRunner(model, num_steps=num_steps)

    runner64 = build()
    runner32 = build()
    runner32.to_dtype(np.float32)
    with no_grad():
        reference = runner64(batch64).data.copy()
        out32 = runner32(batch32).data
    if out32.dtype != np.float32:  # pragma: no cover - dtype gate
        raise AssertionError("float32 evaluation produced a non-float32 output")
    assert_float32_contract(out32, reference, accumulation_length=4096, context="bench_dtype_eval")

    def run64() -> None:
        with no_grad():
            runner64(batch64)

    def run32() -> None:
        with no_grad():
            runner32(batch32)

    f64_s = _time(run64, repeats)
    f32_s = _time(run32, repeats)
    return {
        "float64_ms": f64_s * 1e3,
        "float32_ms": f32_s * 1e3,
        "ratio": f64_s / f32_s if f32_s > 0 else float("inf"),
    }


def bench_tracing_overhead(repeats: int, num_steps: int = 5) -> Dict[str, float]:
    """Disabled-tracing overhead of the span instrumentation on the eval path.

    Tracing is off by default, so the only cost the subsystem is allowed to
    add to a hot path is the price of entering a *disabled* span (the call
    returns the falsy no-op singleton without touching a clock).  This case
    times the whole-model evaluation fast path with tracing disabled — the
    production configuration, already paying every disabled span/ops-span
    check — then counts how many span sites one such evaluation crosses (a
    single fully-traced run with op profiling into a throwaway recorder) and
    microbenches the disabled span entry itself.  The reported
    ``overhead_ratio`` is measured time over the implied span-free time,
    gated under 1.02 by ``tools/bench_gate.py`` (``MAX_RATIOS``).
    """
    from repro.trace import FlightRecorder, span, tracing

    rng = np.random.default_rng(0)
    template = get_template("resnet18", input_channels=2, num_classes=10, stage_channels=(6, 8))
    model = template.build(spiking=True, rng=0)
    model.eval()
    runner = TemporalRunner(model, num_steps=num_steps)
    batch = rng.random((8, 2, 12, 12))

    def evaluate() -> None:
        with no_grad():
            runner(batch)

    eval_s = _time(evaluate, repeats)

    recorder = FlightRecorder(capacity=1 << 20)
    with tracing(recorder=recorder, ops=True):
        evaluate()
    span_sites = len(recorder)

    iterations = 20_000

    def disabled_spans() -> None:
        for _ in range(iterations):
            with span("bench"):
                pass

    per_span_s = _time(disabled_spans, max(repeats // 4, 3)) / iterations
    span_free_s = max(eval_s - span_sites * per_span_s, 1e-12)
    return {
        "eval_ms": eval_s * 1e3,
        "span_sites": float(span_sites),
        "disabled_span_ns": per_span_s * 1e9,
        "overhead_ratio": eval_s / span_free_s,
    }


def bench_bptt_step(repeats: int) -> Dict[str, float]:
    """One BPTT training step: recorded-graph autograd vs the fused kernel.

    Before timing, one step runs on each path from identical initial state
    (template ``build`` is deterministic under a fixed seed) and the loss, the
    logits and every parameter gradient are asserted **bit-identical** — the
    contract (see :mod:`repro.snn.fused_step`) that makes the two timings
    comparable.
    """
    from repro.snn.fused_step import fused_training

    loss_fn = CrossEntropyLoss()
    rng = np.random.default_rng(0)
    batch = rng.random((8, 2, 12, 12))
    targets = rng.integers(0, 10, size=8)

    def build() -> TemporalRunner:
        template = get_template(
            "resnet18", input_channels=2, num_classes=10, stage_channels=(6, 8)
        )
        return TemporalRunner(template.build(spiking=True, rng=0), num_steps=5)

    def one_step(runner: TemporalRunner):
        model = runner.model
        model.zero_grad()
        logits = runner(batch)
        loss = loss_fn(logits, targets)
        loss.backward()
        grads = {
            name: None if p.grad is None else np.array(p.grad)
            for name, p in model.named_parameters()
        }
        return float(loss.item()), np.array(logits.data), grads

    with fused_training("off"):
        graph_loss, graph_logits, graph_grads = one_step(build())
    with fused_training("on"):
        fused_loss, fused_logits, fused_grads = one_step(build())
    assert graph_loss == fused_loss, "fused loss diverged from graph autograd"
    assert np.array_equal(graph_logits, fused_logits), "fused logits diverged"
    for name, reference in graph_grads.items():
        candidate = fused_grads[name]
        if reference is None or candidate is None:
            assert reference is None and candidate is None, f"grad {name}: one path missing"
            continue
        assert np.array_equal(reference, candidate), f"fused grad {name} diverged"

    runner = build()

    def step() -> None:
        runner.model.zero_grad()
        loss_fn(runner(batch), targets).backward()

    with fused_training("off"):
        autograd_s = _time(step, repeats)
    with fused_training("on"):
        fused_s = _time(step, repeats)
    return {
        "autograd_ms": autograd_s * 1e3,
        "fused_ms": fused_s * 1e3,
        "speedup": autograd_s / fused_s if fused_s > 0 else float("inf"),
    }


def format_report(payload: Dict[str, Dict[str, float]]) -> str:
    """Human-readable substrate report."""
    lines = ["Substrate hot paths: autograd vs graph-free inference"]
    lines.append(f"{'case':>16} {'autograd ms':>12} {'fast ms':>10} {'speedup':>9}")
    for case in ("conv2d_forward", "lif_step", "temporal_eval"):
        row = payload[case]
        lines.append(
            f"{case:>16} {row['autograd_ms']:>12.3f} {row['fast_ms']:>10.3f} {row['speedup']:>8.1f}x"
        )
    bptt = payload["bptt_step"]
    lines.append(
        f"BPTT training step: graph {bptt['autograd_ms']:.1f} ms vs "
        f"fused {bptt['fused_ms']:.1f} ms ({bptt['speedup']:.2f}x, "
        "loss/logits/grads bit-identical before timing)"
    )
    lines.append("(fast-path outputs verified bit-identical to the autograd path before timing)")
    lines.append("")
    lines.append("Event-driven sparse eval vs dense fast path (bit-identical outputs)")
    lines.append(f"{'case':>22} {'dense ms':>10} {'sparse ms':>10} {'gain':>7}")
    for case in sorted(k for k in payload if k.startswith("sparse_eval_rate_")):
        row = payload[case]
        gain = row.get("speedup", row.get("ratio", 0.0))
        lines.append(f"{case:>22} {row['dense_ms']:>10.3f} {row['sparse_ms']:>10.3f} {gain:>6.2f}x")
    dtype_row = payload["dtype_eval"]
    lines.append(
        f"float32 vs float64 eval: {dtype_row['float32_ms']:.3f} ms vs "
        f"{dtype_row['float64_ms']:.3f} ms ({dtype_row['ratio']:.2f}x, contract-checked)"
    )
    trace_row = payload["tracing_overhead"]
    lines.append(
        f"disabled-tracing overhead: {trace_row['overhead_ratio']:.4f}x over "
        f"{trace_row['span_sites']:.0f} span sites "
        f"({trace_row['disabled_span_ns']:.0f} ns per disabled span, ceiling 1.02x)"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Benchmark entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description="Benchmark the evaluation substrate hot paths")
    parser.add_argument("--smoke", action="store_true", help="CI-sized run (fewer repeats)")
    parser.add_argument("--output", default=None, help="optional path for the JSON timings")
    args = parser.parse_args(argv)

    repeats = 20 if args.smoke else 100
    heavy_repeats = 3 if args.smoke else 10

    payload: Dict[str, object] = {
        "conv2d_forward": bench_conv_forward(repeats),
        "lif_step": bench_lif_step(repeats),
        "temporal_eval": bench_temporal_eval(heavy_repeats),
        "bptt_step": bench_bptt_step(heavy_repeats),
        "dtype_eval": bench_dtype_eval(heavy_repeats),
        "tracing_overhead": bench_tracing_overhead(heavy_repeats),
        "smoke": bool(args.smoke),
    }
    # Sparse-vs-dense at rates straddling the crossover.  Only the deep-sparse
    # point carries a gated "speedup" key (tools/bench_gate.py floors it at
    # 2x); the near/above-crossover points report an ungated "ratio" because
    # they hover around 1x by design and would make the shrink check flaky.
    for rate, gated in ((0.01, True), (0.05, False), (0.2, False)):
        row = bench_sparse_eval(heavy_repeats, rate)
        value = row["dense_ms"] / row["sparse_ms"] if row["sparse_ms"] > 0 else float("inf")
        row["speedup" if gated else "ratio"] = value
        payload[f"sparse_eval_rate_{rate}"] = row
    print(format_report(payload))

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nsaved timings to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
