"""Micro-benchmarks of the computational substrate.

These are not paper figures; they track the performance of the hot paths the
experiments sit on (im2col convolution forward/backward, one LIF simulation
step, a full BPTT step, GP fitting, one BO proposal round) so regressions in
the substrate are visible independently of the experiment-level benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bayes_opt import BayesianOptimizer
from repro.core.objectives import EvaluationResult, Objective
from repro.core.search_space import BlockSearchInfo, SearchSpace
from repro.gp import GaussianProcessRegressor, HammingKernel
from repro.models import get_template
from repro.nn import CrossEntropyLoss
from repro.snn import LIFNeuron, TemporalRunner
from repro.tensor import Tensor, conv2d


@pytest.mark.benchmark(group="substrate")
def test_conv2d_forward(benchmark, rng=np.random.default_rng(0)):
    """im2col convolution forward pass (the single hottest kernel)."""
    x = Tensor(rng.normal(size=(8, 8, 16, 16)))
    w = Tensor(rng.normal(size=(16, 8, 3, 3)))
    benchmark(lambda: conv2d(x, w, padding=1))


@pytest.mark.benchmark(group="substrate")
def test_conv2d_forward_backward(benchmark):
    """Convolution forward + backward (dominates BPTT training time)."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(8, 8, 16, 16)), requires_grad=True)
    w = Tensor(rng.normal(size=(16, 8, 3, 3)), requires_grad=True)

    def run():
        x.zero_grad()
        w.zero_grad()
        out = conv2d(x, w, padding=1)
        out.sum().backward()

    benchmark(run)


@pytest.mark.benchmark(group="substrate")
def test_lif_step(benchmark):
    """One LIF update over a feature-map-sized membrane."""
    rng = np.random.default_rng(0)
    neuron = LIFNeuron(beta=0.9)
    current = Tensor(rng.normal(size=(16, 16, 16, 16)))

    def run():
        neuron.reset_state()
        neuron(current)

    benchmark(run)


@pytest.mark.benchmark(group="substrate")
def test_snn_bptt_training_step(benchmark):
    """Full forward + BPTT backward of the ResNet-style SNN for one mini-batch."""
    rng = np.random.default_rng(0)
    template = get_template("resnet18", input_channels=2, num_classes=10, stage_channels=(6, 8))
    model = template.build(spiking=True, rng=0)
    runner = TemporalRunner(model, num_steps=5)
    loss_fn = CrossEntropyLoss()
    batch = rng.random((8, 2, 12, 12))
    targets = rng.integers(0, 10, size=8)

    def run():
        model.zero_grad()
        loss = loss_fn(runner(batch), targets)
        loss.backward()

    benchmark(run)


@pytest.mark.benchmark(group="substrate")
def test_gp_fit_predict(benchmark):
    """GP fit + posterior prediction at the sizes the BO loop uses."""
    rng = np.random.default_rng(0)
    x = rng.integers(0, 3, size=(60, 12)).astype(float)
    y = rng.normal(size=60)
    query = rng.integers(0, 3, size=(64, 12)).astype(float)

    def run():
        gp = GaussianProcessRegressor(HammingKernel(), noise=1e-3)
        gp.fit(x, y)
        gp.predict(query)

    benchmark(run)


class _FreeObjective(Objective):
    """Zero-cost objective used to time the BO proposal machinery itself."""

    def __call__(self, spec):
        value = float(spec.total_skips()) / max(spec.encode().size, 1)
        return EvaluationResult(spec=spec, objective_value=value, accuracy=1 - value)


@pytest.mark.benchmark(group="substrate")
def test_bo_proposal_round(benchmark):
    """One surrogate fit + acquisition maximisation + batch proposal."""
    space = SearchSpace([BlockSearchInfo(depth=4), BlockSearchInfo(depth=4)])

    def run():
        optimizer = BayesianOptimizer(space, _FreeObjective(), initial_points=8, candidate_pool_size=64, rng=0)
        optimizer.optimize(3)

    benchmark(run)
