"""Shared configuration for the benchmark harness.

Every benchmark honours the ``REPRO_SCALE`` environment variable
(``smoke`` / ``default`` / ``paper``); without it the benchmarks run at
``smoke`` scale so that ``pytest benchmarks/ --benchmark-only`` completes in a
few minutes on a laptop.  To regenerate the numbers recorded in
EXPERIMENTS.md run::

    REPRO_SCALE=default pytest benchmarks/ --benchmark-only -s

The experiment benchmarks print the paper-style tables/series to stdout (use
``-s`` to see them) in addition to the pytest-benchmark timing statistics.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import get_scale


def bench_scale():
    """Scale used by the benchmark harness (defaults to smoke, not default)."""
    return get_scale(os.environ.get("REPRO_SCALE", "smoke"))


@pytest.fixture(scope="session")
def scale():
    """Session-wide experiment scale."""
    return bench_scale()
