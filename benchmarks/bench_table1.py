"""Benchmark regenerating Table I: adaptation results per dataset and model.

For every (dataset, model) cell the full :class:`repro.core.SNNAdapter`
pipeline runs (ANN reference when applicable, vanilla SNN conversion,
search-space construction, GP+UCB Bayesian optimization with weight sharing,
final fine-tune) and the paper's columns are printed:

    ANN accuracy | SNN accuracy | Optimized SNN accuracy | SNN firing rate | Optimized firing rate

Expected shape: the optimized SNN never does worse than the vanilla SNN
conversion (the paper reports average gains of +8-11 percentage points), and
its firing rate is moderately higher.

Each dataset is one benchmark (three models per dataset) so the harness
reports one timing per paper row-group.  Run with ``-s`` to see the table.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments import format_table1, run_table1
from repro.experiments.table1 import DEFAULT_MODELS, Table1Result, Table1Row, run_table1_cell
from repro.data import load_dataset
from repro.experiments.config import dataset_kwargs


def _run_dataset(dataset: str) -> Table1Result:
    scale = bench_scale()
    splits = load_dataset(dataset, **dataset_kwargs(scale, dataset))
    table = Table1Result()
    for model in DEFAULT_MODELS:
        result = run_table1_cell(dataset, model, scale=scale, splits=splits, seed=scale.seed)
        table.results.append(result)
        table.rows.append(Table1Row.from_result(dataset, model, result))
    print()
    print(format_table1(table))
    return table


def _check(table: Table1Result) -> None:
    assert len(table.rows) == len(DEFAULT_MODELS)
    for row in table.rows:
        # the adapter falls back to the vanilla conversion, so it never regresses
        assert row.optimized_accuracy >= row.snn_accuracy - 1e-9
        assert 0.0 <= row.snn_firing_rate <= 1.0
        assert 0.0 <= row.optimized_firing_rate <= 1.0


@pytest.mark.benchmark(group="table1", min_rounds=1, max_time=1.0, warmup=False)
def test_table1_cifar10(benchmark):
    """Table I, CIFAR-10 rows (static images; includes the ANN reference)."""
    table = benchmark.pedantic(_run_dataset, args=("cifar10",), rounds=1, iterations=1)
    _check(table)
    for row in table.rows:
        assert row.ann_accuracy is not None  # ANN column is reported for static data


@pytest.mark.benchmark(group="table1", min_rounds=1, max_time=1.0, warmup=False)
def test_table1_cifar10_dvs(benchmark):
    """Table I, CIFAR-10-DVS rows (event data; ANN column omitted, as in the paper)."""
    table = benchmark.pedantic(_run_dataset, args=("cifar10-dvs",), rounds=1, iterations=1)
    _check(table)
    for row in table.rows:
        assert row.ann_accuracy is None


@pytest.mark.benchmark(group="table1", min_rounds=1, max_time=1.0, warmup=False)
def test_table1_dvs128_gesture(benchmark):
    """Table I, DVS128 Gesture rows (event data, Adam optimizer, 11 classes)."""
    table = benchmark.pedantic(_run_dataset, args=("dvs128-gesture",), rounds=1, iterations=1)
    _check(table)
