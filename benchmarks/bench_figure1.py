"""Benchmark regenerating Fig. 1 (c) and (d): the skip-connection analysis.

Paper quantities reproduced per panel (DSC = Fig. 1c, ASC = Fig. 1d):

* ANN test accuracy as a function of ``n_skip`` (0..3),
* SNN test accuracy as a function of ``n_skip``,
* SNN average firing rate as a function of ``n_skip``.

Expected shape (Section III-A): accuracy rises with ``n_skip`` for both
connection types and the ANN–SNN gap shrinks; the firing rate grows with
``n_skip`` and grows faster for ASC than for DSC, while DSC instead raises the
MAC count.

Run with ``-s`` to see the regenerated table; timings come from
pytest-benchmark (one "round" = the full sweep for one connection type).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale
from repro.data import load_dataset
from repro.experiments import format_figure1, run_figure1
from repro.experiments.config import dataset_kwargs


@pytest.fixture(scope="module")
def figure1_dataset():
    scale = bench_scale()
    return load_dataset("cifar10-dvs", **dataset_kwargs(scale, "cifar10-dvs"))


def _run(connection_type: str, splits):
    scale = bench_scale()
    result = run_figure1(connection_type, scale=scale, splits=splits, seed=scale.seed)
    print()
    print(format_figure1(result))
    return result


@pytest.mark.benchmark(group="figure1", min_rounds=1, max_time=1.0, warmup=False)
def test_figure1_dsc(benchmark, figure1_dataset):
    """Fig. 1(c): DenseNet-like (concatenation) skip connections."""
    result = benchmark.pedantic(_run, args=("dsc", figure1_dataset), rounds=1, iterations=1)
    assert len(result.points) == 4
    # DSC grows the MAC count monotonically with the number of concatenations
    macs = result.macs()
    assert all(macs[i + 1] >= macs[i] for i in range(len(macs) - 1))


@pytest.mark.benchmark(group="figure1", min_rounds=1, max_time=1.0, warmup=False)
def test_figure1_asc(benchmark, figure1_dataset):
    """Fig. 1(d): addition-type skip connections."""
    result = benchmark.pedantic(_run, args=("asc", figure1_dataset), rounds=1, iterations=1)
    assert len(result.points) == 4
    # ASC leaves the MAC count untouched
    macs = result.macs()
    assert max(macs) == pytest.approx(min(macs))
    # firing rate grows (weakly) with the number of addition skips; at small
    # training scales the trend is noisy, so allow a small absolute slack
    rates = result.firing_rates()
    assert rates[-1] >= rates[0] - 0.05
