"""End-to-end benchmark of the incremental GP search engine.

Five measurements, so the speedup of the incremental engine — and the cost
of the weight-snapshot tier — are tracked numbers instead of claims:

1. **GP posterior update vs. full refit** — time to absorb one new
   observation into an ``n``-point posterior, either by refitting from
   scratch (O(n^3)) or by extending the cached Cholesky factor
   (:meth:`~repro.gp.gp.GaussianProcessRegressor.update`, O(n^2)), at
   n in {50, 200, 800}.
2. **End-to-end BO iteration throughput** — wall-clock per Bayesian
   optimization iteration on a synthetic objective (batch_size=4,
   constant-liar batches) with the incremental engine on and off.
3. **Weight-snapshot overhead** — put (content hash + atomic ``.npz``
   write) and replay (load + merge into a ``WeightStore``) latency of one
   trained-state snapshot, against the cost of the candidate evaluation it
   saves on a cache hit (a real tiny fine-tune).
4. **Async executor vs. batch barrier** — wall-clock per evaluation of the
   asynchronous engine (``async_workers=N``, no barrier) against the batch
   path (``workers=N``) on a straggler-skewed synthetic objective, where a
   minority of candidates are several times slower than the rest: the batch
   path idles every worker behind each straggler, the async executor keeps
   them busy.
5. **Multi-objective engine** — wall-clock per evaluation of the
   random-scalarization Pareto search (one incremental GP per objective,
   front + hypervolume bookkeeping) on a synthetic two-objective trade-off,
   plus the hypervolume-vs-evaluations curve at a few checkpoints so front
   convergence is tracked alongside throughput.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_search.py            # full numbers
    PYTHONPATH=src python benchmarks/bench_search.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_search.py --output bench.json

The JSON output is uploaded as a CI artifact by the benchmark smoke job so
regressions show up in the workflow history.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.bayes_opt import BayesianOptimizer
from repro.core.objectives import EvaluationResult, Objective
from repro.core.search_space import ArchitectureSpec, BlockSearchInfo, SearchSpace
from repro.gp.gp import GaussianProcessRegressor
from repro.gp.kernels import HammingKernel


class SyntheticObjective(Objective):
    """Deterministic, instant stand-in for the accuracy-drop objective.

    The value is a smooth function of the encoding so the GP has structure to
    model, but evaluation costs nothing — the benchmark isolates the *search
    engine* (GP fits, constant-liar proposals), which is exactly what the
    incremental refactor targets.
    """

    def __init__(self) -> None:
        self.num_evaluations = 0

    def __call__(self, spec: ArchitectureSpec) -> EvaluationResult:
        self.num_evaluations += 1
        encoding = spec.encode()
        value = float(np.cos(encoding).sum() / max(len(encoding), 1)) + 0.01 * spec.total_skips()
        return EvaluationResult(spec=spec, objective_value=value, accuracy=1.0 - value)


class StragglerObjective(Objective):
    """Synthetic objective with deterministic, encoding-derived stragglers.

    Evaluation cost in real searches is skewed: a candidate with more skip
    connections builds a bigger model and fine-tunes slower.  This objective
    reproduces that skew reproducibly — most candidates sleep ``base_ms``,
    but any whose encoding sum falls on a multiple of ``straggler_every``
    sleeps ``straggler_ms`` — so the batch path's straggler barrier shows up
    as measurable idle time.  Module-level and stateless per call, so it
    pickles under any multiprocessing start method.
    """

    def __init__(self, base_ms: float = 2.0, straggler_ms: float = 20.0, straggler_every: int = 4) -> None:
        self.base_ms = float(base_ms)
        self.straggler_ms = float(straggler_ms)
        self.straggler_every = int(straggler_every)
        self.num_evaluations = 0

    def delay_ms(self, spec: ArchitectureSpec) -> float:
        """The deterministic evaluation cost of one candidate."""
        total = int(spec.encode().sum())
        return self.straggler_ms if total % self.straggler_every == 0 else self.base_ms

    def __call__(self, spec: ArchitectureSpec) -> EvaluationResult:
        self.num_evaluations += 1
        time.sleep(self.delay_ms(spec) / 1e3)
        encoding = spec.encode()
        value = float(np.cos(encoding).sum() / max(len(encoding), 1)) + 0.01 * spec.total_skips()
        return EvaluationResult(spec=spec, objective_value=value, accuracy=1.0 - value)


def make_search_space(num_blocks: int = 4, depth: int = 6) -> SearchSpace:
    """A search space large enough that random pools never exhaust it."""
    return SearchSpace(
        [BlockSearchInfo(depth=depth, name=f"block{i}") for i in range(num_blocks)],
        name="bench-space",
    )


def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``fn()``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_gp_update(sizes: Sequence[int], repeats: int, dim: int = 24) -> List[Dict[str, float]]:
    """Time a full refit vs. an incremental update of one new observation."""
    rng = np.random.default_rng(0)
    rows = []
    for n in sizes:
        x = rng.integers(0, 3, size=(n + 1, dim)).astype(np.float64)
        y = rng.normal(size=n + 1)
        base = GaussianProcessRegressor(HammingKernel(), noise=1e-3).fit(x[:n], y[:n])

        def refit(x=x, y=y) -> None:
            GaussianProcessRegressor(HammingKernel(), noise=1e-3).fit(x, y)

        def update(x=x, y=y, n=n, base=base) -> None:
            # update() rebinds (never mutates) the fitted arrays, so a shallow
            # clone of the fitted state is enough to restart from `base`
            gp = GaussianProcessRegressor(HammingKernel(), noise=1e-3)
            gp.__dict__.update(base.__dict__)
            gp.update(x[n:], y[n:])

        refit_s = _time(refit, repeats)
        update_s = _time(update, repeats)
        rows.append(
            {
                "n": float(n),
                "refit_ms": refit_s * 1e3,
                "update_ms": update_s * 1e3,
                "speedup": refit_s / update_s if update_s > 0 else float("inf"),
            }
        )
    return rows


def bench_bo_iterations(
    preseed: int,
    iterations: int,
    batch_size: int = 4,
    pool_size: int = 64,
) -> Dict[str, float]:
    """Time BO iterations with the incremental engine on and off.

    The history is preseeded with ``preseed`` evaluations so the GP is at a
    realistic production size when timing starts; the synthetic objective is
    free, so the per-iteration time is dominated by the surrogate machinery.
    """
    timings: Dict[str, float] = {}
    for label, incremental in (("incremental", True), ("legacy", False)):
        space = make_search_space()
        optimizer = BayesianOptimizer(
            space,
            SyntheticObjective(),
            initial_points=preseed,
            batch_size=batch_size,
            candidate_pool_size=pool_size,
            incremental=incremental,
            rng=0,
        )
        optimizer.optimize(0)  # evaluate the preseed points only
        start = time.perf_counter()
        optimizer.optimize(iterations)
        elapsed = time.perf_counter() - start
        timings[f"{label}_s_per_iter"] = elapsed / iterations
    timings["speedup"] = timings["legacy_s_per_iter"] / timings["incremental_s_per_iter"]
    timings["preseed"] = float(preseed)
    timings["iterations"] = float(iterations)
    timings["batch_size"] = float(batch_size)
    return timings


def bench_snapshot_store(repeats: int) -> Dict[str, float]:
    """Snapshot put/replay latency vs. the evaluation cost a replay avoids.

    The state is a real trained candidate (single-block template, tiny
    synthetic event data), so tensor count and sizes match what an adapter
    run persists; the evaluation cost is the wall-clock of that candidate's
    one-epoch fine-tune — the work a store hit skips while the snapshot
    replay keeps its weight updates.
    """
    import tempfile

    from repro.core.objectives import AccuracyDropObjective
    from repro.core.snapshots import WeightSnapshotStore
    from repro.core.weight_sharing import WeightStore
    from repro.data import load_dataset
    from repro.models import build_single_block_template
    from repro.training.snn_trainer import SNNTrainingConfig

    splits = load_dataset("cifar10-dvs", num_samples=60, image_size=8, num_steps=4, seed=0)
    template = build_single_block_template(input_channels=2, num_classes=10, channels=4)
    objective = AccuracyDropObjective(
        template=template,
        splits=splits,
        training_config=SNNTrainingConfig(epochs=1, batch_size=16, num_steps=4, seed=0),
        weight_store=WeightStore(),
        measure_firing_rate=False,
    )
    spec = template.search_space().default_spec()
    evaluation_s = _time(lambda: objective(spec), repeats)
    result = objective(spec)
    state = result.weight_update.state

    with tempfile.TemporaryDirectory() as tmp:
        snapshots = WeightSnapshotStore(tmp, keep_best=max(64, repeats + 1))
        # content-addressing makes re-putting identical state free, so each
        # timed put perturbs one tensor to force a full hash + write
        counter = {"i": 0}

        def put() -> None:
            counter["i"] += 1
            perturbed = dict(state)
            first_key = next(iter(perturbed))
            perturbed[first_key] = perturbed[first_key] + counter["i"] * 1e-9
            snapshots.put(perturbed, score=0.5)

        put_s = _time(put, repeats)
        digest = snapshots.put(state, score=0.9)

        def replay() -> None:
            loaded = snapshots.get(digest)
            target = WeightStore()
            target.update_from_state(loaded, score=0.9, only_if_better=True)
            target.merge_from_state(loaded)

        replay_s = _time(replay, repeats)
        snapshot_bytes = snapshots.total_bytes() / max(len(snapshots), 1)

    overhead = (put_s + replay_s) / evaluation_s if evaluation_s > 0 else float("inf")
    return {
        "put_ms": put_s * 1e3,
        "replay_ms": replay_s * 1e3,
        "evaluation_ms": evaluation_s * 1e3,
        "overhead_fraction": overhead,
        "tensors": float(len(state)),
        "snapshot_bytes": float(snapshot_bytes),
    }


def bench_async_vs_batch(
    workers: int,
    iterations: int,
    initial_points: int = 4,
    pool_size: int = 48,
) -> Dict[str, float]:
    """Wall-clock per evaluation: async executor vs. the batch barrier.

    Both engines run the same budget (``initial_points + iterations *
    workers`` evaluations, ``batch_size=workers``) against the same
    straggler-skewed objective; only the execution strategy differs.  The
    ``ideal_ms_per_eval`` row is the lower bound a perfectly utilised pool
    could reach (total sleep time divided by the worker count) — the async
    engine should land close to it, the batch path pays the straggler
    barrier on top.
    """
    timings: Dict[str, float] = {"workers": float(workers), "iterations": float(iterations)}
    total_delay_ms = 0.0
    evaluations = 0
    for label, engine_kwargs in (
        ("batch", {"workers": workers}),
        ("async", {"async_workers": workers}),
    ):
        space = make_search_space()
        objective = StragglerObjective()
        optimizer = BayesianOptimizer(
            space,
            objective,
            initial_points=initial_points,
            batch_size=workers,
            candidate_pool_size=pool_size,
            rng=0,
            **engine_kwargs,
        )
        start = time.perf_counter()
        history = optimizer.optimize(iterations)
        elapsed = time.perf_counter() - start
        timings[f"{label}_ms_per_eval"] = elapsed * 1e3 / len(history)
        total_delay_ms += sum(objective.delay_ms(record.spec) for record in history)
        evaluations += len(history)
    timings["evaluations_per_engine"] = evaluations / 2.0
    # lower bound: every worker busy 100% of the time on the average workload
    timings["ideal_ms_per_eval"] = total_delay_ms / evaluations / workers
    timings["speedup"] = timings["batch_ms_per_eval"] / timings["async_ms_per_eval"]
    return timings


def bench_multi_objective(
    preseed: int,
    iterations: int,
    pool_size: int = 64,
) -> Dict[str, float]:
    """Throughput and front quality of the multi-objective engine.

    The objective is the instant synthetic trade-off of
    :class:`~repro.core.objectives.SyntheticWeightObjective` (accuracy vs. a
    skip-count-correlated energy), so the timing isolates the engine: two
    incremental GP updates per observation, scalarised proposals over the
    persistent candidate pool, non-dominated insertion and the hypervolume
    indicator.  Checkpointed hypervolumes make front convergence a tracked
    number next to ms/eval.
    """
    from repro.core.multi_objective import MultiObjectiveBayesianOptimizer
    from repro.core.objectives import SyntheticWeightObjective

    space = make_search_space()
    optimizer = MultiObjectiveBayesianOptimizer(
        space,
        SyntheticWeightObjective(),
        objectives=("accuracy", "energy"),
        initial_points=preseed,
        batch_size=1,
        candidate_pool_size=pool_size,
        rng=0,
    )
    optimizer.optimize(0)  # evaluate the warm start only
    start = time.perf_counter()
    optimizer.optimize(iterations)
    elapsed = time.perf_counter() - start
    curve = optimizer.hypervolume_history
    # curve entry i was recorded at evaluation preseed + i (the trace starts
    # at the warm-start observation that fixed the reference point)
    checkpoints = {
        f"hypervolume_at_{preseed + index}": float(curve[index])
        for index in sorted({0, len(curve) // 2, len(curve) - 1})
        if 0 <= index < len(curve)
    }
    return {
        "ms_per_eval": elapsed * 1e3 / max(iterations, 1),
        "evaluations": float(len(optimizer.history)),
        "front_size": float(len(optimizer.front)),
        "final_hypervolume": float(curve[-1]) if curve else 0.0,
        "preseed": float(preseed),
        **checkpoints,
    }


def format_report(
    gp_rows: List[Dict[str, float]],
    bo: Dict[str, float],
    snap: Dict[str, float],
    async_rows: Optional[Dict[str, float]] = None,
    mo: Optional[Dict[str, float]] = None,
) -> str:
    """Human-readable benchmark report."""
    lines = ["GP posterior: full refit vs incremental update (one new point)"]
    lines.append(f"{'n':>6} {'refit ms':>10} {'update ms':>10} {'speedup':>9}")
    for row in gp_rows:
        lines.append(
            f"{int(row['n']):>6} {row['refit_ms']:>10.2f} {row['update_ms']:>10.2f} {row['speedup']:>8.1f}x"
        )
    lines.append("")
    lines.append(
        f"BO end-to-end (batch_size={int(bo['batch_size'])}, history preseed={int(bo['preseed'])}): "
        f"legacy {bo['legacy_s_per_iter'] * 1e3:.1f} ms/iter, "
        f"incremental {bo['incremental_s_per_iter'] * 1e3:.1f} ms/iter "
        f"({bo['speedup']:.1f}x)"
    )
    lines.append("")
    lines.append(
        f"Weight snapshots ({int(snap['tensors'])} tensors, {snap['snapshot_bytes'] / 1024:.1f} KiB): "
        f"put {snap['put_ms']:.2f} ms, replay {snap['replay_ms']:.2f} ms vs "
        f"evaluation {snap['evaluation_ms']:.1f} ms "
        f"({100 * snap['overhead_fraction']:.2f}% of the work a cache hit saves)"
    )
    if async_rows is not None:
        lines.append("")
        lines.append(
            f"Async executor vs batch barrier (straggler objective, workers={int(async_rows['workers'])}, "
            f"{int(async_rows['evaluations_per_engine'])} evals/engine): "
            f"batch {async_rows['batch_ms_per_eval']:.1f} ms/eval, "
            f"async {async_rows['async_ms_per_eval']:.1f} ms/eval "
            f"({async_rows['speedup']:.1f}x; ideal utilisation {async_rows['ideal_ms_per_eval']:.1f} ms/eval)"
        )
    if mo is not None:
        checkpoints = ", ".join(
            f"{key.split('_at_')[1]} evals: {value:.3f}"
            for key, value in sorted(
                (kv for kv in mo.items() if kv[0].startswith("hypervolume_at_")),
                key=lambda kv: int(kv[0].split("_at_")[1]),
            )
        )
        lines.append("")
        lines.append(
            f"Multi-objective engine (2 objectives, preseed={int(mo['preseed'])}): "
            f"{mo['ms_per_eval']:.1f} ms/eval, front size {int(mo['front_size'])}, "
            f"hypervolume [{checkpoints}]"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Benchmark entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description="Benchmark the incremental GP search engine")
    parser.add_argument("--smoke", action="store_true", help="CI-sized run (fewer repeats/iterations)")
    parser.add_argument("--output", default=None, help="optional path for the JSON timings")
    args = parser.parse_args(argv)

    sizes = (50, 200, 800)
    repeats = 2 if args.smoke else 5
    preseed = 200 if args.smoke else 300
    iterations = 3 if args.smoke else 10

    async_iterations = 4 if args.smoke else 12

    mo_iterations = 30 if args.smoke else 120
    mo_preseed = 20 if args.smoke else 40

    gp_rows = bench_gp_update(sizes, repeats=repeats)
    bo = bench_bo_iterations(preseed=preseed, iterations=iterations)
    snap = bench_snapshot_store(repeats=repeats)
    async_rows = bench_async_vs_batch(workers=2, iterations=async_iterations)
    mo = bench_multi_objective(preseed=mo_preseed, iterations=mo_iterations)
    print(format_report(gp_rows, bo, snap, async_rows, mo))

    if args.output:
        payload = {
            "gp_update": gp_rows,
            "bo_iterations": bo,
            "snapshot_store": snap,
            "async_executor": async_rows,
            "multi_objective": mo,
            "smoke": bool(args.smoke),
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nsaved timings to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
