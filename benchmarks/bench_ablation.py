"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's own evaluation:

* the DSC-vs-ASC energy trade-off discussed qualitatively in Section III-A
  (firing rate vs. MAC count at matched skip budgets), turned into numbers;
* acquisition-function choice (UCB — the paper's pick — vs. EI vs. PI);
* GP kernel choice (categorical Hamming vs. Matérn 5/2 vs. RBF);
* weight sharing on/off in the Bayesian optimizer.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments import (
    run_acquisition_ablation,
    run_dsc_vs_asc_energy,
    run_kernel_ablation,
    run_weight_sharing_ablation,
)


def _print_ablation(result):
    print()
    print(f"ablation: {result.name} ({result.metric_name})")
    for key, value in result.values.items():
        print(f"  {key:>14s}: {value:.4f}")


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=1.0, warmup=False)
def test_dsc_vs_asc_energy(benchmark):
    """Section III-A trade-off: ASC raises firing rate, DSC raises MACs."""
    result = benchmark.pedantic(
        lambda: run_dsc_vs_asc_energy(scale=bench_scale(), seed=bench_scale().seed), rounds=1, iterations=1
    )
    _print_ablation(result)
    dsc = result.details["dsc"]
    asc = result.details["asc"]
    print(
        f"  dsc: firing rate {100 * dsc['firing_rate']:.2f}%, MACs/step {dsc['macs_per_step']:,.0f}, "
        f"energy {dsc['snn_energy_nj']:.2f} nJ"
    )
    print(
        f"  asc: firing rate {100 * asc['firing_rate']:.2f}%, MACs/step {asc['macs_per_step']:,.0f}, "
        f"energy {asc['snn_energy_nj']:.2f} nJ"
    )
    # DSC concatenation costs MACs; ASC does not
    assert dsc["macs_per_step"] > asc["macs_per_step"]


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=1.0, warmup=False)
def test_acquisition_functions(benchmark):
    """UCB (paper) vs EI vs PI on the same search problem."""
    result = benchmark.pedantic(
        lambda: run_acquisition_ablation(scale=bench_scale(), seed=bench_scale().seed), rounds=1, iterations=1
    )
    _print_ablation(result)
    assert set(result.values) == {"ucb", "ei", "pi"}
    assert all(0.0 <= value <= 1.0 for value in result.values.values())


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=1.0, warmup=False)
def test_gp_kernels(benchmark):
    """Hamming vs Matérn 5/2 vs RBF surrogate kernels."""
    result = benchmark.pedantic(
        lambda: run_kernel_ablation(scale=bench_scale(), seed=bench_scale().seed), rounds=1, iterations=1
    )
    _print_ablation(result)
    assert set(result.values) == {"hamming", "matern52", "rbf"}


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=1.0, warmup=False)
def test_weight_sharing(benchmark):
    """BO with the shared-weight store vs training every candidate from scratch."""
    result = benchmark.pedantic(
        lambda: run_weight_sharing_ablation(scale=bench_scale(), seed=bench_scale().seed), rounds=1, iterations=1
    )
    _print_ablation(result)
    assert set(result.values) == {"shared", "from_scratch"}
